#include "obs/trace_export.h"

#include <set>
#include <stdexcept>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "util/json.h"

namespace cne::obs {
namespace {

TEST(TraceSinkTest, NoSinkInstalledNamedSpansAreInert) {
  ASSERT_EQ(TraceSink::Current(), nullptr);
  // Must not crash or touch any sink state.
  const TraceSpan span(nullptr, "orphan");
}

TEST(TraceSinkTest, CapturesNamedSpansInsideSampledScopes) {
  TraceSink sink;
  sink.Install();
  EXPECT_EQ(TraceSink::Current(), &sink);
  {
    const SubmitTraceScope scope(true, 7);
    const TraceSpan span(nullptr, "submit");
  }
  sink.Uninstall();
  EXPECT_EQ(TraceSink::Current(), nullptr);
  EXPECT_EQ(sink.EventsRetained(), 1u);
  EXPECT_EQ(sink.EventsDropped(), 0u);
}

TEST(TraceSinkTest, DisabledScopeCapturesNothing) {
  TraceSink sink;
  sink.Install();
  {
    const SubmitTraceScope scope(false, 1);
    const TraceSpan span(nullptr, "submit");
  }
  sink.Uninstall();
  EXPECT_EQ(sink.EventsRetained(), 0u);
}

TEST(TraceSinkTest, OutsideAnyScopeNamedSpansDoNotEmit) {
  TraceSink sink;
  sink.Install();
  { const TraceSpan span(nullptr, "submit"); }
  sink.Uninstall();
  EXPECT_EQ(sink.EventsRetained(), 0u);
}

TEST(TraceSinkTest, HistogramSpansRecordAlwaysButEmitOnlyWhenArmed) {
  LatencyHistogram histogram;
  TraceSink sink;
  sink.Install();
  {
    const SubmitTraceScope scope(true, 3);
    const TraceSpan span(&histogram, "execute");
  }
  { const TraceSpan span(&histogram, "execute"); }  // outside any scope
  sink.Uninstall();
  EXPECT_EQ(histogram.Snapshot().count, 2u);
  EXPECT_EQ(sink.EventsRetained(), 1u);
}

TEST(TraceSinkTest, SamplePeriodKeepsEveryNthScope) {
  TraceSinkOptions options;
  options.sample_period = 2;
  TraceSink sink(options);
  sink.Install();
  for (uint64_t submit = 1; submit <= 4; ++submit) {
    const SubmitTraceScope scope(true, submit);
    const TraceSpan span(nullptr, "submit");
  }
  sink.Uninstall();
  EXPECT_EQ(sink.EventsRetained(), 2u);

  // The retained scopes are the 1st and 3rd, identified by submit id.
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(JsonValue::Parse(sink.ToChromeJson(), &doc, &error)) << error;
  std::set<double> submits;
  for (const JsonValue& e : doc["traceEvents"].AsArray()) {
    submits.insert(e["args"]["submit"].AsDouble());
  }
  EXPECT_EQ(submits, (std::set<double>{1.0, 3.0}));
}

TEST(TraceSinkTest, RingOverwritesOldestEvents) {
  TraceSinkOptions options;
  options.ring_capacity = 4;
  TraceSink sink(options);
  sink.Install();
  {
    const SubmitTraceScope scope(true, 1);
    for (int i = 0; i < 10; ++i) {
      const TraceSpan span(nullptr, "tick");
    }
  }
  sink.Uninstall();
  EXPECT_EQ(sink.EventsRetained(), 4u);
  EXPECT_EQ(sink.EventsDropped(), 6u);
}

TEST(TraceSinkTest, ChromeJsonIsWellFormedAndSorted) {
  TraceSink sink;
  sink.Install();
  {
    const SubmitTraceScope scope(true, 42);
    const TraceSpan outer(nullptr, "submit");
    { const TraceSpan inner(nullptr, "admission"); }
    { const TraceSpan inner(nullptr, "release"); }
  }
  sink.Uninstall();

  JsonValue doc;
  std::string error;
  ASSERT_TRUE(JsonValue::Parse(sink.ToChromeJson(), &doc, &error)) << error;
  EXPECT_EQ(doc["otherData"]["events_retained"].AsDouble(), 3.0);
  EXPECT_EQ(doc["otherData"]["events_dropped"].AsDouble(), 0.0);
  const auto& events = doc["traceEvents"].AsArray();
  ASSERT_EQ(events.size(), 3u);
  double last_ts = -1.0;
  for (const JsonValue& e : events) {
    EXPECT_TRUE(e["name"].IsString());
    EXPECT_EQ(e["ph"].AsString(), "X");
    ASSERT_TRUE(e.Find("ts") != nullptr && e["ts"].IsNumber());
    EXPECT_GE(e["ts"].AsDouble(), last_ts);
    last_ts = e["ts"].AsDouble();
    EXPECT_GE(e["dur"].AsDouble(), 0.0);
    EXPECT_EQ(e["pid"].AsDouble(), 1.0);
    EXPECT_EQ(e["args"]["submit"].AsDouble(), 42.0);
  }
  // The root starts first and (on a ts tie) sorts before its children, so
  // Perfetto reconstructs it as the parent.
  EXPECT_EQ(events[0]["name"].AsString(), "submit");
  EXPECT_EQ(events[0]["ts"].AsDouble(), 0.0);  // ts is relative to the base
}

TEST(TraceSinkTest, ThreadsGetDistinctTids) {
  TraceSink sink;
  sink.Install();
  {
    const SubmitTraceScope scope(true, 5);
    { const TraceSpan span(nullptr, "execute_chunk"); }
    std::thread worker([] { const TraceSpan span(nullptr, "execute_chunk"); });
    worker.join();
  }
  sink.Uninstall();

  JsonValue doc;
  std::string error;
  ASSERT_TRUE(JsonValue::Parse(sink.ToChromeJson(), &doc, &error)) << error;
  std::set<double> tids;
  for (const JsonValue& e : doc["traceEvents"].AsArray()) {
    tids.insert(e["tid"].AsDouble());
  }
  EXPECT_EQ(tids.size(), 2u);
}

TEST(TraceSinkTest, ExceptionUnwindStillEmitsEvents) {
  TraceSink sink;
  sink.Install();
  try {
    const SubmitTraceScope scope(true, 9);
    const TraceSpan span(nullptr, "submit");
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  sink.Uninstall();
  EXPECT_EQ(sink.EventsRetained(), 1u);
}

TEST(TraceSinkTest, ReinstallAfterUninstallStartsCleanBuffers) {
  // The thread-local buffer cache keys on the sink generation: a second
  // sink must not inherit (or scribble over) the first sink's rings.
  TraceSink first;
  first.Install();
  {
    const SubmitTraceScope scope(true, 1);
    const TraceSpan span(nullptr, "submit");
  }
  first.Uninstall();
  ASSERT_EQ(first.EventsRetained(), 1u);

  TraceSink second;
  second.Install();
  {
    const SubmitTraceScope scope(true, 2);
    const TraceSpan span(nullptr, "submit");
  }
  second.Uninstall();
  EXPECT_EQ(second.EventsRetained(), 1u);
  EXPECT_EQ(first.EventsRetained(), 1u);  // untouched by the second run
}

}  // namespace
}  // namespace cne::obs
