#include "apps/projection.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "core/central_dp.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"

namespace cne {
namespace {

// Lower-layer fixture: pairs (0,1) share 3, (0,2) share 1, (1,2) share 0.
BipartiteGraph MakeFixture() {
  GraphBuilder b(6, 3);
  b.AddEdge(0, 0).AddEdge(1, 0).AddEdge(2, 0).AddEdge(3, 0);
  b.AddEdge(0, 1).AddEdge(1, 1).AddEdge(2, 1);
  b.AddEdge(3, 2).AddEdge(4, 2).AddEdge(5, 2);
  return b.Build();
}

TEST(ExactProjectionTest, ThresholdFiltersPairs) {
  const BipartiteGraph g = MakeFixture();
  const std::vector<QueryPair> candidates = {
      {Layer::kLower, 0, 1}, {Layer::kLower, 0, 2}, {Layer::kLower, 1, 2}};
  const auto strict = ExactProjection(g, candidates, 2.0);
  ASSERT_EQ(strict.size(), 1u);
  EXPECT_EQ(strict[0].a, 0u);
  EXPECT_EQ(strict[0].b, 1u);
  EXPECT_DOUBLE_EQ(strict[0].weight, 3.0);

  const auto loose = ExactProjection(g, candidates, 1.0);
  EXPECT_EQ(loose.size(), 2u);
}

TEST(ExactProjectionAllPairsTest, MatchesCandidateEnumeration) {
  const BipartiteGraph g = MakeFixture();
  const auto all = ExactProjectionAllPairs(g, Layer::kLower, 1.0);
  // Pairs (0,1) weight 3 and (0,2) weight 1.
  ASSERT_EQ(all.size(), 2u);
  double total_weight = 0;
  for (const auto& e : all) total_weight += e.weight;
  EXPECT_DOUBLE_EQ(total_weight, 4.0);
}

TEST(ExactProjectionAllPairsTest, CompleteBipartiteProjectsToClique) {
  const BipartiteGraph g = CompleteBipartite(4, 3);
  const auto proj = ExactProjectionAllPairs(g, Layer::kUpper, 1.0);
  EXPECT_EQ(proj.size(), 6u);  // C(4,2)
  for (const auto& e : proj) EXPECT_DOUBLE_EQ(e.weight, 3.0);
}

TEST(PrivateProjectionTest, HighBudgetMatchesExact) {
  const BipartiteGraph g = MakeFixture();
  const std::vector<QueryPair> candidates = {
      {Layer::kLower, 0, 1}, {Layer::kLower, 0, 2}, {Layer::kLower, 1, 2}};
  CentralDpEstimator central;
  Rng rng(1);
  int perfect = 0;
  const auto exact = ExactProjection(g, candidates, 2.0);
  for (int t = 0; t < 100; ++t) {
    const auto priv =
        PrivateProjection(g, candidates, 2.0, central, 100.0, rng);
    const ProjectionQuality q = CompareProjections(exact, priv);
    perfect += (q.f1 == 1.0);
  }
  EXPECT_GT(perfect, 95);
}

TEST(PrivateProjectionTest, LowBudgetDegradesQuality) {
  Rng gen(2);
  const BipartiteGraph g = ErdosRenyiBipartite(40, 40, 400, gen);
  std::vector<QueryPair> candidates;
  for (VertexId u = 0; u < 10; ++u) {
    for (VertexId w = u + 1; w < 10; ++w) {
      candidates.push_back({Layer::kLower, u, w});
    }
  }
  CentralDpEstimator central;
  Rng rng(3);
  const auto exact = ExactProjection(g, candidates, 3.0);
  double f1_strong = 0, f1_weak = 0;
  const int runs = 50;
  for (int t = 0; t < runs; ++t) {
    f1_strong += CompareProjections(
                     exact, PrivateProjection(g, candidates, 3.0, central,
                                              20.0, rng))
                     .f1;
    f1_weak += CompareProjections(
                   exact, PrivateProjection(g, candidates, 3.0, central,
                                            0.05, rng))
                   .f1;
  }
  EXPECT_GT(f1_strong / runs, f1_weak / runs);
}

TEST(ServiceProjectionTest, HighBudgetMatchesExactProjection) {
  const BipartiteGraph g = MakeFixture();
  const std::vector<QueryPair> candidates = {
      {Layer::kLower, 0, 1}, {Layer::kLower, 0, 2}, {Layer::kLower, 1, 2}};
  const auto exact = ExactProjection(g, candidates, 2.0);
  int perfect = 0;
  for (uint64_t t = 0; t < 50; ++t) {
    ServiceOptions options;
    options.algorithm = ServiceAlgorithm::kOneR;
    options.epsilon = 12.0;
    options.seed = t;
    QueryService service(g, options);
    const auto priv = ServiceProjection(service, candidates, 2.0);
    const ProjectionQuality q = CompareProjections(exact, priv);
    perfect += q.f1 == 1.0;
    // All three pairs run over three shared releases (vertices 0, 1, 2).
    EXPECT_EQ(service.store().stats().releases, 3u);
  }
  EXPECT_GT(perfect, 40);
}

TEST(ServiceProjectionTest, RejectedPairsProduceNoEdge) {
  const BipartiteGraph g = MakeFixture();
  ServiceOptions options;
  options.algorithm = ServiceAlgorithm::kOneR;
  options.epsilon = 2.0;
  options.lifetime_budget = 0.5;  // below one release: everything rejects
  QueryService service(g, options);
  const auto edges = ServiceProjection(
      service, {{Layer::kLower, 0, 1}, {Layer::kLower, 0, 2}}, 0.0);
  EXPECT_TRUE(edges.empty());
  EXPECT_EQ(service.store().stats().releases, 0u);
}

TEST(CompareProjectionsTest, Metrics) {
  const std::vector<ProjectionEdge> exact = {{0, 1, 3.0}, {0, 2, 1.0}};
  const std::vector<ProjectionEdge> est = {{1, 0, 2.5}, {1, 2, 4.0}};
  // Endpoint order must not matter: {1,0} matches {0,1}.
  const ProjectionQuality q = CompareProjections(exact, est);
  EXPECT_DOUBLE_EQ(q.precision, 0.5);
  EXPECT_DOUBLE_EQ(q.recall, 0.5);
  EXPECT_DOUBLE_EQ(q.f1, 0.5);
}

TEST(CompareProjectionsTest, EmptyCases) {
  const ProjectionQuality both = CompareProjections({}, {});
  EXPECT_DOUBLE_EQ(both.precision, 1.0);
  EXPECT_DOUBLE_EQ(both.recall, 1.0);
  const ProjectionQuality spurious =
      CompareProjections({}, {{0, 1, 1.0}});
  EXPECT_DOUBLE_EQ(spurious.precision, 0.0);
  EXPECT_DOUBLE_EQ(spurious.recall, 1.0);
}

TEST(PrivateProjectionDeathTest, RejectsZeroBudget) {
  const BipartiteGraph g = MakeFixture();
  CentralDpEstimator central;
  Rng rng(4);
  EXPECT_DEATH(PrivateProjection(g, {{Layer::kLower, 0, 1}}, 1.0, central,
                                 0.0, rng),
               "budget");
}

}  // namespace
}  // namespace cne
