#include "apps/topk.h"

#include <gtest/gtest.h>

#include "core/central_dp.h"
#include "graph/graph_builder.h"

namespace cne {
namespace {

// Lower-layer source 0 with candidates 1..4 sharing 4, 3, 1, 0 upper
// neighbors respectively.
BipartiteGraph MakeRankedFixture() {
  GraphBuilder b(8, 5);
  for (VertexId v = 0; v < 6; ++v) b.AddEdge(v, 0);  // deg(source) = 6
  for (VertexId v = 0; v < 4; ++v) b.AddEdge(v, 1);  // C2 = 4
  for (VertexId v = 0; v < 3; ++v) b.AddEdge(v, 2);  // C2 = 3
  b.AddEdge(5, 3);                                   // C2 = 1
  b.AddEdge(7, 4);                                   // C2 = 0
  return b.Build();
}

TEST(ExactTopKTest, RanksByCommonNeighbors) {
  const BipartiteGraph g = MakeRankedFixture();
  const TopKResult r = ExactTopKCommonNeighbors(
      g, {Layer::kLower, 0}, {1, 2, 3, 4}, 2);
  ASSERT_EQ(r.ranked.size(), 2u);
  EXPECT_EQ(r.ranked[0].vertex, 1u);
  EXPECT_DOUBLE_EQ(r.ranked[0].score, 4.0);
  EXPECT_EQ(r.ranked[1].vertex, 2u);
}

TEST(ExactTopKTest, ExcludesSourceFromCandidates) {
  const BipartiteGraph g = MakeRankedFixture();
  const TopKResult r = ExactTopKCommonNeighbors(
      g, {Layer::kLower, 0}, {0, 1}, 5);
  ASSERT_EQ(r.ranked.size(), 1u);
  EXPECT_EQ(r.ranked[0].vertex, 1u);
}

TEST(ExactTopKTest, KLargerThanCandidates) {
  const BipartiteGraph g = MakeRankedFixture();
  const TopKResult r = ExactTopKCommonNeighbors(
      g, {Layer::kLower, 0}, {1, 2}, 10);
  EXPECT_EQ(r.ranked.size(), 2u);
}

TEST(PrivateTopKTest, SplitsBudgetAcrossCandidates) {
  const BipartiteGraph g = MakeRankedFixture();
  CentralDpEstimator central;
  Rng rng(1);
  const TopKResult r = PrivateTopKCommonNeighbors(
      g, central, {Layer::kLower, 0}, {1, 2, 3, 4}, 2, 8.0, rng);
  EXPECT_DOUBLE_EQ(r.epsilon_per_candidate, 2.0);
  EXPECT_EQ(r.ranked.size(), 2u);
}

TEST(PrivateTopKTest, HighBudgetRecoversExactRanking) {
  const BipartiteGraph g = MakeRankedFixture();
  CentralDpEstimator central;
  Rng rng(2);
  int perfect = 0;
  const TopKResult exact = ExactTopKCommonNeighbors(
      g, {Layer::kLower, 0}, {1, 2, 3, 4}, 2);
  for (int t = 0; t < 100; ++t) {
    const TopKResult priv = PrivateTopKCommonNeighbors(
        g, central, {Layer::kLower, 0}, {1, 2, 3, 4}, 2, 400.0, rng);
    perfect += TopKRecall(exact, priv) == 1.0;
  }
  EXPECT_GT(perfect, 95);
}

TEST(ServiceTopKTest, HighBudgetRecoversExactRankingOverSharedViews) {
  const BipartiteGraph g = MakeRankedFixture();
  const TopKResult exact = ExactTopKCommonNeighbors(
      g, {Layer::kLower, 0}, {1, 2, 3, 4}, 2);
  int perfect = 0;
  for (uint64_t t = 0; t < 100; ++t) {
    ServiceOptions options;
    options.algorithm = ServiceAlgorithm::kOneR;
    options.epsilon = 8.0;  // one shared release, not ε / N per pair
    options.seed = t;
    QueryService service(g, options);
    const TopKResult priv = ServiceTopKCommonNeighbors(
        service, {Layer::kLower, 0}, {1, 2, 3, 4}, 2);
    EXPECT_EQ(priv.ranked.size(), 2u);
    perfect += TopKRecall(exact, priv) == 1.0;
  }
  EXPECT_GT(perfect, 90);
}

TEST(ServiceTopKTest, SkipsSourceAndReleasesEachVertexOnce) {
  const BipartiteGraph g = MakeRankedFixture();
  ServiceOptions options;
  options.algorithm = ServiceAlgorithm::kOneR;
  options.epsilon = 2.0;
  QueryService service(g, options);
  const TopKResult r = ServiceTopKCommonNeighbors(
      service, {Layer::kLower, 0}, {0, 1, 2, 3, 4}, 10);
  EXPECT_EQ(r.ranked.size(), 4u);  // the source itself is skipped
  // One release per distinct vertex: source + 4 candidates.
  EXPECT_EQ(service.store().stats().releases, 5u);
  EXPECT_DOUBLE_EQ(r.epsilon_per_candidate, 2.0);
  // A second top-k over the same candidates is pure post-processing.
  const TopKResult again = ServiceTopKCommonNeighbors(
      service, {Layer::kLower, 0}, {1, 2, 3, 4}, 10);
  EXPECT_EQ(service.store().stats().releases, 5u);
  ASSERT_EQ(again.ranked.size(), r.ranked.size());
  for (size_t i = 0; i < r.ranked.size(); ++i) {
    EXPECT_DOUBLE_EQ(again.ranked[i].score, r.ranked[i].score);
  }
}

TEST(TopKRecallTest, Values) {
  TopKResult exact;
  exact.ranked = {{1, 4.0}, {2, 3.0}};
  TopKResult est;
  est.ranked = {{2, 9.0}, {7, 8.0}};
  EXPECT_DOUBLE_EQ(TopKRecall(exact, est), 0.5);
  est.ranked = {{1, 1.0}, {2, 1.0}};
  EXPECT_DOUBLE_EQ(TopKRecall(exact, est), 1.0);
  exact.ranked.clear();
  EXPECT_DOUBLE_EQ(TopKRecall(exact, est), 1.0);
}

TEST(PrivateTopKDeathTest, RejectsEmptyCandidates) {
  const BipartiteGraph g = MakeRankedFixture();
  CentralDpEstimator central;
  Rng rng(3);
  EXPECT_DEATH(PrivateTopKCommonNeighbors(g, central, {Layer::kLower, 0}, {},
                                          2, 1.0, rng),
               "candidates");
}

}  // namespace
}  // namespace cne
