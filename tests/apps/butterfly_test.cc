#include "apps/butterfly.h"

#include <gtest/gtest.h>

#include "core/central_dp.h"
#include "core/multir_ds.h"
#include "core/naive.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "util/statistics.h"

namespace cne {
namespace {

TEST(ExactButterfliesTest, CompleteBipartite) {
  // K(a, b) has C(a,2) * C(b,2) butterflies.
  EXPECT_EQ(ExactButterflies(CompleteBipartite(2, 2)), 1u);
  EXPECT_EQ(ExactButterflies(CompleteBipartite(3, 3)), 9u);
  EXPECT_EQ(ExactButterflies(CompleteBipartite(4, 5)), 60u);
}

TEST(ExactButterfliesTest, NoButterflyWithoutSharedPairs) {
  EXPECT_EQ(ExactButterflies(Star(10)), 0u);
  // A perfect matching has no wedges at all.
  GraphBuilder b(4, 4);
  for (VertexId v = 0; v < 4; ++v) b.AddEdge(v, v);
  EXPECT_EQ(ExactButterflies(b.Build()), 0u);
}

TEST(ExactButterfliesTest, PlantedConfiguration) {
  // c common neighbors between the two lower query vertices form C(c, 2)
  // butterflies; exclusive neighbors add none.
  const BipartiteGraph g = PlantedCommonNeighbors(5, 3, 2, 10);
  EXPECT_EQ(ExactButterflies(g), 10u);  // C(5,2)
}

TEST(ExactButterfliesTest, HandValidatedSmallGraph) {
  // u0-{l0,l1}, u1-{l0,l1}, u2-{l1,l2}: only (u0,u1) x (l0,l1) closes.
  GraphBuilder b(3, 3);
  b.AddEdge(0, 0).AddEdge(0, 1).AddEdge(1, 0).AddEdge(1, 1);
  b.AddEdge(2, 1).AddEdge(2, 2);
  EXPECT_EQ(ExactButterflies(b.Build()), 1u);
}

TEST(ExactWedgesTest, Formula) {
  // Complete bipartite K(3,4): wedges centered upper = 3 * C(4,2) = 18.
  const BipartiteGraph g = CompleteBipartite(3, 4);
  EXPECT_EQ(ExactWedges(g, Layer::kUpper), 18u);
  EXPECT_EQ(ExactWedges(g, Layer::kLower), 4u * 3u);
}

TEST(ExactCaterpillarsTest, CompleteBipartite) {
  // K(a,b): every edge has (b-1)(a-1) extensions.
  const BipartiteGraph g = CompleteBipartite(3, 4);
  EXPECT_EQ(ExactCaterpillars(g), 12u * 2u * 3u);
}

TEST(ClusteringCoefficientTest, CompleteBipartiteIsMaximallyClustered) {
  // For K(n,m): 4B / W = 4 * C(n,2)C(m,2) / (nm (n-1)(m-1)) = 1.
  EXPECT_DOUBLE_EQ(BipartiteClusteringCoefficient(CompleteBipartite(3, 4)),
                   1.0);
  EXPECT_DOUBLE_EQ(BipartiteClusteringCoefficient(CompleteBipartite(5, 5)),
                   1.0);
}

TEST(ClusteringCoefficientTest, ZeroWithoutCaterpillars) {
  EXPECT_DOUBLE_EQ(BipartiteClusteringCoefficient(Star(5)), 0.0);
}

TEST(EstimateButterfliesTest, UnbiasedWithCentralBaseline) {
  // CentralDP has no RR noise, so the butterfly estimator's unbiasedness
  // can be verified quickly at a moderate budget.
  const BipartiteGraph g = CompleteBipartite(6, 6);
  const double truth = static_cast<double>(ExactButterflies(g));  // 225
  CentralDpEstimator central;
  Rng rng(1);
  RunningStats stats;
  for (int t = 0; t < 3000; ++t) {
    stats.Add(EstimateButterflies(g, Layer::kUpper, central, 4.0, 10, rng)
                  .butterflies);
  }
  EXPECT_NEAR(stats.Mean(), truth, 5 * stats.StdError());
}

TEST(EstimateButterfliesTest, UnbiasedWithMultiRDS) {
  const BipartiteGraph g = PlantedCommonNeighbors(6, 2, 2, 30);
  const double truth = static_cast<double>(ExactButterflies(g));  // C(6,2)
  auto ds = MakeMultiRDSStar();
  Rng rng(2);
  RunningStats stats;
  for (int t = 0; t < 4000; ++t) {
    stats.Add(EstimateButterflies(g, Layer::kLower, *ds, 4.0, 1, rng)
                  .butterflies);
  }
  EXPECT_NEAR(stats.Mean(), truth, 5 * stats.StdError());
}

TEST(EstimateButterfliesTest, ReportsBudgetSplit) {
  const BipartiteGraph g = CompleteBipartite(4, 4);
  CentralDpEstimator central;
  Rng rng(3);
  const ButterflyEstimate e =
      EstimateButterflies(g, Layer::kUpper, central, 2.0, 3, rng);
  EXPECT_EQ(e.sampled_pairs, 3u);
  EXPECT_DOUBLE_EQ(e.epsilon_per_run, 1.0);
}

TEST(EstimateButterfliesDeathTest, RejectsBiasedEstimator) {
  const BipartiteGraph g = CompleteBipartite(4, 4);
  NaiveEstimator naive;
  Rng rng(4);
  EXPECT_DEATH(
      EstimateButterflies(g, Layer::kUpper, naive, 2.0, 3, rng),
      "unbiased");
}

}  // namespace
}  // namespace cne
