#include "apps/similarity.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/central_dp.h"
#include "core/multir_ds.h"
#include "graph/generators.h"
#include "util/statistics.h"

namespace cne {
namespace {

TEST(ExactSimilarityTest, KnownValues) {
  // deg(u)=8, deg(w)=5, C2=3 -> union 10.
  const BipartiteGraph g = PlantedCommonNeighbors(3, 5, 2, 40);
  const QueryPair q{Layer::kLower, 0, 1};
  EXPECT_DOUBLE_EQ(ExactJaccard(g, q), 0.3);
  EXPECT_DOUBLE_EQ(ExactCosine(g, q), 3.0 / std::sqrt(40.0));
}

TEST(ExactSimilarityTest, DisjointNeighborhoods) {
  const BipartiteGraph g = PlantedCommonNeighbors(0, 4, 4, 10);
  const QueryPair q{Layer::kLower, 0, 1};
  EXPECT_DOUBLE_EQ(ExactJaccard(g, q), 0.0);
  EXPECT_DOUBLE_EQ(ExactCosine(g, q), 0.0);
}

TEST(ExactSimilarityTest, IdenticalNeighborhoods) {
  const BipartiteGraph g = PlantedCommonNeighbors(6, 0, 0, 10);
  const QueryPair q{Layer::kLower, 0, 1};
  EXPECT_DOUBLE_EQ(ExactJaccard(g, q), 1.0);
  EXPECT_DOUBLE_EQ(ExactCosine(g, q), 1.0);
}

TEST(ExactSimilarityTest, IsolatedVertexIsZero) {
  const BipartiteGraph g = PlantedCommonNeighbors(2, 2, 2, 5, 1);
  const QueryPair q{Layer::kLower, 0, 2};  // lower 2 is isolated
  EXPECT_DOUBLE_EQ(ExactJaccard(g, q), 0.0);
  EXPECT_DOUBLE_EQ(ExactCosine(g, q), 0.0);
}

TEST(PrivateSimilarityTest, ScoresAreInUnitInterval) {
  const BipartiteGraph g = PlantedCommonNeighbors(3, 5, 2, 40);
  PrivateSimilarityEstimator sim(MakeMultiRDSStar());
  Rng rng(1);
  for (int t = 0; t < 200; ++t) {
    const SimilarityResult r =
        sim.Estimate(g, {Layer::kLower, 0, 1}, 2.0, rng);
    EXPECT_GE(r.jaccard, 0.0);
    EXPECT_LE(r.jaccard, 1.0);
    EXPECT_GE(r.cosine, 0.0);
    EXPECT_LE(r.cosine, 1.0);
  }
}

TEST(PrivateSimilarityTest, ConcentratesNearTruthAtHighBudget) {
  const BipartiteGraph g = PlantedCommonNeighbors(12, 4, 4, 40);
  PrivateSimilarityEstimator sim(
      std::make_shared<CentralDpEstimator>(), 0.5);
  Rng rng(2);
  RunningStats jac;
  for (int t = 0; t < 3000; ++t) {
    jac.Add(sim.Estimate(g, {Layer::kLower, 0, 1}, 20.0, rng).jaccard);
  }
  EXPECT_NEAR(jac.Mean(), ExactJaccard(g, {Layer::kLower, 0, 1}), 0.05);
}

TEST(PrivateSimilarityTest, HigherBudgetReducesError) {
  const BipartiteGraph g = PlantedCommonNeighbors(6, 6, 6, 60);
  PrivateSimilarityEstimator sim(MakeMultiRDSStar());
  const double truth = ExactJaccard(g, {Layer::kLower, 0, 1});
  Rng rng(3);
  RunningStats lo_err, hi_err;
  for (int t = 0; t < 1500; ++t) {
    lo_err.Add(std::abs(
        sim.Estimate(g, {Layer::kLower, 0, 1}, 1.0, rng).jaccard - truth));
    hi_err.Add(std::abs(
        sim.Estimate(g, {Layer::kLower, 0, 1}, 4.0, rng).jaccard - truth));
  }
  EXPECT_LT(hi_err.Mean(), lo_err.Mean());
}

TEST(ServiceSimilarityTest, RecoversJaccardFromSharedViews) {
  // deg(u)=8, deg(w)=5, C2=3 -> Jaccard 0.3. At a generous ε both the C2
  // answer and the view-size degree de-bias concentrate near the truth.
  const BipartiteGraph g = PlantedCommonNeighbors(3, 5, 2, 40);
  const QueryPair q{Layer::kLower, 0, 1};
  RunningStats jac, deg_u;
  for (uint64_t t = 0; t < 2000; ++t) {
    ServiceOptions options;
    options.algorithm = ServiceAlgorithm::kOneR;
    options.epsilon = 8.0;
    options.seed = t;
    QueryService service(g, options);
    const auto result = ServiceSimilarity(service, q);
    ASSERT_TRUE(result.has_value());
    jac.Add(result->jaccard);
    deg_u.Add(result->deg_u_estimate);
  }
  EXPECT_NEAR(jac.Mean(), ExactJaccard(g, q), 0.05);
  EXPECT_NEAR(deg_u.Mean(), 8.0, 4.5 * deg_u.StdError());
}

TEST(ServiceSimilarityTest, RejectedQueryReturnsNullopt) {
  const BipartiteGraph g = PlantedCommonNeighbors(3, 5, 2, 40);
  ServiceOptions options;
  options.algorithm = ServiceAlgorithm::kOneR;
  options.epsilon = 2.0;
  options.lifetime_budget = 0.5;  // below one release
  QueryService service(g, options);
  EXPECT_FALSE(ServiceSimilarity(service, {Layer::kLower, 0, 1}).has_value());
}

TEST(ServiceSimilarityDeathTest, MultiRSSNeverReleasesU) {
  // MultiR-SS releases only w's view, so the u-degree de-bias has nothing
  // to read — the fatal check in NoisyViewStore::View fires.
  const BipartiteGraph g = PlantedCommonNeighbors(3, 5, 2, 40);
  ServiceOptions options;
  options.algorithm = ServiceAlgorithm::kMultiRSS;
  options.epsilon = 2.0;
  QueryService service(g, options);
  EXPECT_DEATH(ServiceSimilarity(service, {Layer::kLower, 0, 1}),
               "never materialized");
}

TEST(PrivateSimilarityDeathTest, RejectsBadConfig) {
  EXPECT_DEATH(PrivateSimilarityEstimator(nullptr), "");
  EXPECT_DEATH(
      PrivateSimilarityEstimator(MakeMultiRDSStar(), 1.5), "fraction");
}

}  // namespace
}  // namespace cne
