#include "apps/biclique.h"

#include <gtest/gtest.h>

#include "apps/butterfly.h"
#include "core/central_dp.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "util/statistics.h"

namespace cne {
namespace {

uint64_t Choose(uint64_t n, uint64_t k) {
  if (n < k) return 0;
  uint64_t r = 1;
  for (uint64_t i = 0; i < k; ++i) r = r * (n - i) / (i + 1);
  return r;
}

TEST(ExactBicliques2qTest, CompleteBipartite) {
  // K(a,b) contains C(a,2)·C(b,q) copies of K_{2,q} with the 2-side on
  // the a-layer.
  const BipartiteGraph g = CompleteBipartite(4, 5);
  for (int q = 1; q <= 4; ++q) {
    EXPECT_EQ(ExactBicliques2q(g, Layer::kUpper, q),
              Choose(4, 2) * Choose(5, q))
        << "q=" << q;
  }
}

TEST(ExactBicliques2qTest, QEquals2MatchesButterflies) {
  Rng rng(1);
  const BipartiteGraph g = ChungLuPowerLaw(200, 200, 1500, 2.1, rng);
  EXPECT_EQ(ExactBicliques2q(g, Layer::kUpper, 2), ExactButterflies(g));
  EXPECT_EQ(ExactBicliques2q(g, Layer::kLower, 2), ExactButterflies(g));
}

TEST(ExactBicliques2qTest, QEquals1MatchesWedges) {
  Rng rng(2);
  const BipartiteGraph g = ChungLuPowerLaw(100, 100, 600, 2.1, rng);
  // K_{2,1} with the 2-side on `layer` = wedges centered on the opposite
  // layer.
  EXPECT_EQ(ExactBicliques2q(g, Layer::kUpper, 1),
            ExactWedges(g, Layer::kLower));
}

TEST(ExactBicliques2qTest, PlantedConfiguration) {
  // c2=6 common neighbors: C(6,q) bicliques through the one pair.
  const BipartiteGraph g = PlantedCommonNeighbors(6, 2, 2, 10);
  EXPECT_EQ(ExactBicliques2q(g, Layer::kLower, 3), Choose(6, 3));
  EXPECT_EQ(ExactBicliques2q(g, Layer::kLower, 6), 1u);
  EXPECT_EQ(ExactBicliques2q(g, Layer::kLower, 7), 0u);
}

TEST(ExactBicliques3qTest, CompleteBipartite) {
  const BipartiteGraph g = CompleteBipartite(5, 4);
  for (int q = 1; q <= 3; ++q) {
    EXPECT_EQ(ExactBicliques3q(g, Layer::kUpper, q),
              Choose(5, 3) * Choose(4, q))
        << "q=" << q;
  }
}

TEST(ExactBicliques3qTest, NoTripleSharesNeighbors) {
  // Planted: only lower 0 and 1 share anything; no triple exists on a
  // 2-vertex layer... use a graph with 3+ lower vertices and disjoint
  // neighborhoods.
  GraphBuilder b(9, 3);
  for (VertexId i = 0; i < 9; ++i) b.AddEdge(i, i / 3);
  const BipartiteGraph g = b.Build();
  EXPECT_EQ(ExactBicliques3q(g, Layer::kLower, 1), 0u);
}

TEST(ExactBicliques3qTest, HandValidated) {
  // Lower vertices 0,1,2 all adjacent to upper 0,1; lower 2 also to 2.
  GraphBuilder b(3, 3);
  for (VertexId l = 0; l < 3; ++l) {
    b.AddEdge(0, l);
    b.AddEdge(1, l);
  }
  b.AddEdge(2, 2);
  const BipartiteGraph g = b.Build();
  // Triple {0,1,2} shares {u0,u1}: C(2,1)=2 copies of K_{3,1}, 1 of
  // K_{3,2}.
  EXPECT_EQ(ExactBicliques3q(g, Layer::kLower, 1), 2u);
  EXPECT_EQ(ExactBicliques3q(g, Layer::kLower, 2), 1u);
  EXPECT_EQ(ExactBicliques3q(g, Layer::kLower, 3), 0u);
}

TEST(UnbiasedChooseTest, ExactOnNoiselessRuns) {
  // With runs all equal to the true x, the estimator returns C(x,q)
  // exactly (the polynomial identities hold pointwise).
  const double x = 7.0;
  const double runs[3] = {x, x, x};
  EXPECT_DOUBLE_EQ(UnbiasedChooseFromRuns(runs, 1), 7.0);
  EXPECT_DOUBLE_EQ(UnbiasedChooseFromRuns(runs, 2), 21.0);
  EXPECT_DOUBLE_EQ(UnbiasedChooseFromRuns(runs, 3), 35.0);
}

TEST(UnbiasedChooseTest, UnbiasedUnderSymmetricNoise) {
  // Independent noisy runs f_i = x + Z_i with E[Z]=0: the estimator's
  // Monte-Carlo mean must equal C(x,q).
  Rng rng(3);
  const double x = 5.0;
  for (int q = 1; q <= 3; ++q) {
    RunningStats stats;
    for (int t = 0; t < 200000; ++t) {
      double runs[3];
      for (int r = 0; r < q; ++r) runs[r] = x + rng.Laplace(2.0);
      stats.Add(UnbiasedChooseFromRuns(runs, q));
    }
    EXPECT_NEAR(stats.Mean(), Choose(5, q), 5 * stats.StdError())
        << "q=" << q;
  }
}

TEST(EstimateBicliques2qTest, UnbiasedAcrossQ) {
  const BipartiteGraph g = PlantedCommonNeighbors(6, 2, 2, 30);
  CentralDpEstimator central;
  Rng rng(4);
  for (int q = 1; q <= 3; ++q) {
    const double truth =
        static_cast<double>(ExactBicliques2q(g, Layer::kLower, q));
    RunningStats stats;
    for (int t = 0; t < 4000; ++t) {
      stats.Add(
          EstimateBicliques2q(g, Layer::kLower, central, q, 6.0, 1, rng)
              .count);
    }
    EXPECT_NEAR(stats.Mean(), truth, 5 * stats.StdError()) << "q=" << q;
  }
}

TEST(EstimateBicliques2qTest, ReportsConfiguration) {
  const BipartiteGraph g = CompleteBipartite(4, 4);
  CentralDpEstimator central;
  Rng rng(5);
  const BicliqueEstimate e =
      EstimateBicliques2q(g, Layer::kUpper, central, 3, 6.0, 5, rng);
  EXPECT_EQ(e.q, 3);
  EXPECT_EQ(e.sampled_pairs, 5u);
  EXPECT_DOUBLE_EQ(e.epsilon_per_run, 2.0);
}

TEST(EstimateBicliques2qDeathTest, RejectsBadConfigurations) {
  const BipartiteGraph g = CompleteBipartite(4, 4);
  CentralDpEstimator central;
  Rng rng(6);
  EXPECT_DEATH(
      EstimateBicliques2q(g, Layer::kUpper, central, 4, 2.0, 5, rng),
      "q in");
  EXPECT_DEATH(
      EstimateBicliques2q(g, Layer::kUpper, central, 2, 2.0, 0, rng),
      "at least one");
}

}  // namespace
}  // namespace cne
