#include "util/json.h"

#include <string>

#include <gtest/gtest.h>

namespace cne {
namespace {

JsonValue MustParse(const std::string& text) {
  JsonValue doc;
  std::string error;
  EXPECT_TRUE(JsonValue::Parse(text, &doc, &error)) << error;
  return doc;
}

bool Fails(const std::string& text) {
  JsonValue doc;
  return !JsonValue::Parse(text, &doc, nullptr);
}

TEST(JsonParserTest, Scalars) {
  EXPECT_EQ(MustParse("null").type(), JsonValue::Type::kNull);
  EXPECT_TRUE(MustParse("true").AsBool());
  EXPECT_FALSE(MustParse("false").AsBool());
  EXPECT_DOUBLE_EQ(MustParse("42").AsDouble(), 42.0);
  EXPECT_DOUBLE_EQ(MustParse("-3.25e2").AsDouble(), -325.0);
  EXPECT_EQ(MustParse("\"hi\"").AsString(), "hi");
}

TEST(JsonParserTest, StringEscapes) {
  EXPECT_EQ(MustParse("\"a\\n\\t\\\"b\\\\\"").AsString(), "a\n\t\"b\\");
  EXPECT_EQ(MustParse("\"\\u0041\"").AsString(), "A");
  // Two-byte and three-byte UTF-8 from \u escapes.
  EXPECT_EQ(MustParse("\"\\u00e9\"").AsString(), "\xc3\xa9");
  EXPECT_EQ(MustParse("\"\\u20ac\"").AsString(), "\xe2\x82\xac");
}

TEST(JsonParserTest, ObjectsKeepInsertionOrder) {
  const JsonValue doc = MustParse("{\"z\": 1, \"a\": 2, \"m\": 3}");
  const auto& members = doc.AsObject();
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0].first, "z");
  EXPECT_EQ(members[1].first, "a");
  EXPECT_EQ(members[2].first, "m");
}

TEST(JsonParserTest, NestedStructures) {
  const JsonValue doc = MustParse(
      "{\"phases\": [{\"name\": \"admission\", \"p99_seconds\": 1.5e-6}],"
      " \"counters\": {\"submits\": 7}}");
  ASSERT_EQ(doc["phases"].AsArray().size(), 1u);
  EXPECT_EQ(doc["phases"].AsArray()[0]["name"].AsString(), "admission");
  EXPECT_DOUBLE_EQ(
      doc["phases"].AsArray()[0]["p99_seconds"].AsDouble(), 1.5e-6);
  EXPECT_DOUBLE_EQ(doc["counters"]["submits"].AsDouble(), 7.0);
}

TEST(JsonParserTest, MissingKeysChainSafely) {
  const JsonValue doc = MustParse("{\"a\": 1}");
  // operator[] on absent keys yields a null value, never a crash — so
  // readers can probe optional fields without Find checks at each level.
  EXPECT_EQ(doc["missing"]["deeper"]["still"].type(),
            JsonValue::Type::kNull);
  EXPECT_EQ(doc["missing"].AsDouble(), 0.0);
  EXPECT_EQ(doc["missing"].AsString(), "");
  EXPECT_EQ(doc.Find("missing"), nullptr);
  EXPECT_NE(doc.Find("a"), nullptr);
}

TEST(JsonParserTest, RejectsMalformedInput) {
  EXPECT_TRUE(Fails(""));
  EXPECT_TRUE(Fails("{"));
  EXPECT_TRUE(Fails("{\"a\": }"));
  EXPECT_TRUE(Fails("[1, 2,]"));
  EXPECT_TRUE(Fails("\"unterminated"));
  EXPECT_TRUE(Fails("{\"a\": 1} trailing"));
  EXPECT_TRUE(Fails("0x10"));
  EXPECT_TRUE(Fails("+1"));
  EXPECT_TRUE(Fails("nul"));
}

TEST(JsonParserTest, ReportsErrorOffset) {
  JsonValue doc;
  std::string error;
  EXPECT_FALSE(JsonValue::Parse("{\"a\": !}", &doc, &error));
  EXPECT_NE(error.find("6"), std::string::npos) << error;
}

TEST(JsonParserTest, DepthLimitStopsRunawayNesting) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += "[";
  for (int i = 0; i < 200; ++i) deep += "]";
  EXPECT_TRUE(Fails(deep));
  // Within the limit, nesting is fine.
  std::string ok;
  for (int i = 0; i < 50; ++i) ok += "[";
  for (int i = 0; i < 50; ++i) ok += "]";
  JsonValue doc;
  EXPECT_TRUE(JsonValue::Parse(ok, &doc, nullptr));
}

TEST(JsonParserTest, WhitespaceEverywhere) {
  const JsonValue doc =
      MustParse("  \n\t{ \"a\" :\n [ 1 ,\t2 ] }\r\n ");
  ASSERT_EQ(doc["a"].AsArray().size(), 2u);
  EXPECT_DOUBLE_EQ(doc["a"].AsArray()[1].AsDouble(), 2.0);
}

}  // namespace
}  // namespace cne
