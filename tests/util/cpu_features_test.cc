// Tests for the runtime ISA probe and the force/clamp override surface.
// Hardware-agnostic by construction: nothing here assumes the machine
// has AVX2 or AVX-512 — only that the invariants between Detected,
// Active, Available, and Force hold on whatever the probe found.

#include "util/cpu_features.h"

#include <gtest/gtest.h>

namespace cne {
namespace {

class CpuFeaturesTest : public ::testing::Test {
 protected:
  // Every test may re-point the active level; put it back so suite
  // order never matters.
  void TearDown() override { ForceSimdLevel(DetectedSimdLevel()); }
};

TEST_F(CpuFeaturesTest, DetectedLevelIsStableAndInRange) {
  const SimdLevel first = DetectedSimdLevel();
  EXPECT_GE(static_cast<int>(first), 0);
  EXPECT_LT(static_cast<int>(first), kNumSimdLevels);
  EXPECT_EQ(first, DetectedSimdLevel());  // cached, not re-probed
}

TEST_F(CpuFeaturesTest, ActiveNeverExceedsDetected) {
  EXPECT_LE(static_cast<int>(ActiveSimdLevel()),
            static_cast<int>(DetectedSimdLevel()));
}

TEST_F(CpuFeaturesTest, AvailableLevelsAreContiguousFromScalar) {
  const std::vector<SimdLevel> levels = AvailableSimdLevels();
  ASSERT_FALSE(levels.empty());
  EXPECT_EQ(levels.front(), SimdLevel::kScalar);
  EXPECT_EQ(levels.back(), DetectedSimdLevel());
  for (size_t i = 0; i < levels.size(); ++i) {
    EXPECT_EQ(static_cast<int>(levels[i]), static_cast<int>(i));
  }
}

TEST_F(CpuFeaturesTest, ForceSetsEveryAvailableLevel) {
  for (SimdLevel level : AvailableSimdLevels()) {
    ForceSimdLevel(level);
    EXPECT_EQ(ActiveSimdLevel(), level) << SimdLevelName(level);
  }
}

TEST_F(CpuFeaturesTest, ForceAboveDetectedClampsInsteadOfCrashing) {
  // On a full-AVX-512 machine this is a no-op request; everywhere else
  // it exercises the clamp. Either way Active stays executable.
  ForceSimdLevel(SimdLevel::kAvx512);
  EXPECT_LE(static_cast<int>(ActiveSimdLevel()),
            static_cast<int>(DetectedSimdLevel()));
}

TEST_F(CpuFeaturesTest, NamesAndParserRoundTrip) {
  for (int l = 0; l < kNumSimdLevels; ++l) {
    const SimdLevel level = static_cast<SimdLevel>(l);
    const auto parsed = ParseSimdLevel(SimdLevelName(level));
    ASSERT_TRUE(parsed.has_value()) << SimdLevelName(level);
    EXPECT_EQ(*parsed, level);
  }
  EXPECT_FALSE(ParseSimdLevel("").has_value());
  EXPECT_FALSE(ParseSimdLevel("sse2").has_value());
  EXPECT_FALSE(ParseSimdLevel("AVX2").has_value());  // names are lowercase
}

}  // namespace
}  // namespace cne
