#include <gtest/gtest.h>

#include "util/logging.h"
#include "util/timer.h"

namespace cne {
namespace {

TEST(TimerTest, MonotoneNonNegative) {
  Timer timer;
  const double a = timer.Seconds();
  EXPECT_GE(a, 0.0);
  // Burn a little time deterministically.
  // Compound assignment on volatile is deprecated in C++20.
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  const double b = timer.Seconds();
  EXPECT_GE(b, a);
  // Millis and Seconds use the same clock: successive reads stay ordered.
  const double ms = timer.Millis();
  EXPECT_GE(ms, b * 1e3);
}

TEST(TimerTest, ResetRestartsClock) {
  Timer timer;
  volatile double sink = 0;
  for (int i = 0; i < 1000000; ++i) sink = sink + i;
  const double before = timer.Seconds();
  timer.Reset();
  EXPECT_LT(timer.Seconds(), before + 1e-3);
}

TEST(LoggingTest, LevelGating) {
  const LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Messages below the level are swallowed (no crash, no output check
  // possible without capturing stderr; this exercises the code path).
  CNE_LOG(kDebug) << "invisible";
  CNE_LOG(kInfo) << "invisible";
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(saved);
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH(CNE_CHECK(1 == 2) << "boom", "Check failed: 1 == 2");
}

TEST(LoggingTest, CheckSuccessIsSilentAndCheap) {
  CNE_CHECK(true) << "never evaluated";
  SUCCEED();
}

}  // namespace
}  // namespace cne
