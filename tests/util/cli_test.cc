#include "util/cli.h"

#include <gtest/gtest.h>

namespace cne {
namespace {

CommandLine Parse(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return CommandLine(static_cast<int>(args.size()), args.data());
}

TEST(CommandLineTest, EqualsSyntax) {
  const CommandLine cl = Parse({"--epsilon=2.5", "--pairs=100"});
  EXPECT_DOUBLE_EQ(cl.GetDouble("epsilon", 0), 2.5);
  EXPECT_EQ(cl.GetInt("pairs", 0), 100);
}

TEST(CommandLineTest, SpaceSyntax) {
  const CommandLine cl = Parse({"--datasets", "RM,AC", "--seed", "7"});
  EXPECT_EQ(cl.GetString("datasets"), "RM,AC");
  EXPECT_EQ(cl.GetInt("seed", 0), 7);
}

TEST(CommandLineTest, BareFlagIsTrue) {
  const CommandLine cl = Parse({"--csv"});
  EXPECT_TRUE(cl.Has("csv"));
  EXPECT_TRUE(cl.GetBool("csv"));
  EXPECT_FALSE(cl.GetBool("missing"));
}

TEST(CommandLineTest, DefaultsWhenAbsent) {
  const CommandLine cl = Parse({});
  EXPECT_EQ(cl.GetInt("n", 42), 42);
  EXPECT_DOUBLE_EQ(cl.GetDouble("x", 1.5), 1.5);
  EXPECT_EQ(cl.GetString("s", "d"), "d");
}

TEST(CommandLineTest, UnparsableFallsBackToDefault) {
  const CommandLine cl = Parse({"--n=abc"});
  EXPECT_EQ(cl.GetInt("n", 9), 9);
}

TEST(CommandLineTest, PositionalArguments) {
  const CommandLine cl = Parse({"input.txt", "--flag=1", "output.txt"});
  ASSERT_EQ(cl.positional().size(), 2u);
  EXPECT_EQ(cl.positional()[0], "input.txt");
  EXPECT_EQ(cl.positional()[1], "output.txt");
}

TEST(CommandLineTest, ListFlag) {
  const CommandLine cl = Parse({"--datasets=RM,AC,OC"});
  const auto list = cl.GetList("datasets");
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0], "RM");
  EXPECT_EQ(list[2], "OC");
}

TEST(SplitStringTest, DropsEmptyPieces) {
  const auto parts = SplitString(",a,,b,", ',');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
}

TEST(SplitStringTest, EmptyInput) {
  EXPECT_TRUE(SplitString("", ',').empty());
}

}  // namespace
}  // namespace cne
