// The failpoint framework itself: spec grammar, actions, triggers,
// counters, the kill switch. Fault-injection tests elsewhere assume all
// of this works, so it gets its own exhaustive unit coverage.

#include "util/failpoint.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

namespace cne::fail {
namespace {

#if CNE_FAILPOINTS_ENABLED

class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { Clear(); }
};

TEST_F(FailpointTest, CompiledInAndUnarmedByDefault) {
  EXPECT_TRUE(kCompiledIn);
  EXPECT_FALSE(static_cast<bool>(Hit("wal", ".fsync")));
  EXPECT_FALSE(static_cast<bool>(Hit("anything")));
}

TEST_F(FailpointTest, ErrorActionCarriesNamedErrno) {
  Configure("wal.fsync=err:ENOSPC");
  const Injected fp = Hit("wal", ".fsync");
  ASSERT_TRUE(static_cast<bool>(fp));
  EXPECT_EQ(fp.action, Action::kError);
  EXPECT_EQ(fp.error, ENOSPC);
  // The prefix/suffix split is purely an allocation dodge: the full name
  // in one piece resolves to the same site.
  EXPECT_TRUE(static_cast<bool>(Hit("wal.fsync")));
  // A different site stays quiet.
  EXPECT_FALSE(static_cast<bool>(Hit("wal", ".append")));
}

TEST_F(FailpointTest, ErrorDefaultsToEioAndAcceptsNumbers) {
  Configure("a=err");
  EXPECT_EQ(Hit("a").error, EIO);
  Configure("a=err:28");
  EXPECT_EQ(Hit("a").error, 28);
}

TEST_F(FailpointTest, ShortActionPercentAndBytes) {
  Configure("s=short:17%");
  Injected fp = Hit("s");
  ASSERT_EQ(fp.action, Action::kShort);
  EXPECT_TRUE(fp.percent);
  EXPECT_EQ(fp.ShortenedLen(100), 17u);
  EXPECT_EQ(fp.ShortenedLen(3), 1u);  // clamped up: progress guaranteed
  EXPECT_EQ(fp.ShortenedLen(0), 0u);

  Configure("s=short:5");
  fp = Hit("s");
  EXPECT_FALSE(fp.percent);
  EXPECT_EQ(fp.ShortenedLen(100), 5u);
  EXPECT_EQ(fp.ShortenedLen(3), 3u);  // clamped down to the request

  Configure("s=short");  // default: 50%
  fp = Hit("s");
  EXPECT_TRUE(fp.percent);
  EXPECT_EQ(fp.ShortenedLen(100), 50u);
}

TEST_F(FailpointTest, CorruptActionCarriesOffset) {
  Configure("c=corrupt:12");
  const Injected fp = Hit("c");
  EXPECT_EQ(fp.action, Action::kCorrupt);
  EXPECT_EQ(fp.amount, 12u);
  Configure("c=corrupt");
  EXPECT_EQ(Hit("c").amount, 0u);
}

TEST_F(FailpointTest, NthTriggerFiresExactlyOnce) {
  Configure("x=err@3");
  EXPECT_FALSE(static_cast<bool>(Hit("x")));
  EXPECT_FALSE(static_cast<bool>(Hit("x")));
  EXPECT_TRUE(static_cast<bool>(Hit("x")));
  EXPECT_FALSE(static_cast<bool>(Hit("x")));
  EXPECT_EQ(HitCount("x"), 4u);
  EXPECT_EQ(FireCount("x"), 1u);
}

TEST_F(FailpointTest, FromNthTriggerFiresForever) {
  Configure("x=err@2+");
  EXPECT_FALSE(static_cast<bool>(Hit("x")));
  EXPECT_TRUE(static_cast<bool>(Hit("x")));
  EXPECT_TRUE(static_cast<bool>(Hit("x")));
  EXPECT_EQ(FireCount("x"), 2u);
}

TEST_F(FailpointTest, ProbabilisticTriggerIsSeededAndDeterministic) {
  constexpr int kTrials = 400;
  const auto pattern = [](uint64_t seed) {
    Configure("p=err@30%", seed);
    std::string fires;
    for (int i = 0; i < kTrials; ++i) {
      fires += static_cast<bool>(Hit("p")) ? '1' : '0';
    }
    return fires;
  };
  const std::string a = pattern(7);
  const std::string b = pattern(7);
  EXPECT_EQ(a, b);  // same spec + seed replays identically
  EXPECT_NE(a, pattern(8));
  const auto ones = static_cast<int>(std::count(a.begin(), a.end(), '1'));
  EXPECT_GT(ones, kTrials / 10);      // fires sometimes...
  EXPECT_LT(ones, kTrials / 2);       // ...but nowhere near always
}

TEST_F(FailpointTest, EdgeProbabilitiesNeverAndAlways) {
  Configure("p=err@0%");
  for (int i = 0; i < 50; ++i) EXPECT_FALSE(static_cast<bool>(Hit("p")));
  Configure("p=err@100%");
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(static_cast<bool>(Hit("p")));
}

TEST_F(FailpointTest, MultipleEntriesSeparatorsAndWhitespace) {
  Configure(" a.b = err:EROFS ; c = short:10 , d=corrupt:3 ");
  EXPECT_EQ(Hit("a", ".b").error, EROFS);
  EXPECT_EQ(Hit("c").action, Action::kShort);
  EXPECT_EQ(Hit("d").action, Action::kCorrupt);
}

TEST_F(FailpointTest, OffRemovesAnEarlierEntry) {
  Configure("a=err,b=err,a=off");
  EXPECT_FALSE(static_cast<bool>(Hit("a")));
  EXPECT_TRUE(static_cast<bool>(Hit("b")));
  EXPECT_EQ(Describe(), "b=err");
}

TEST_F(FailpointTest, ConfigureReplacesTheWholeConfiguration) {
  Configure("a=err");
  Configure("b=err");
  EXPECT_FALSE(static_cast<bool>(Hit("a")));
  EXPECT_TRUE(static_cast<bool>(Hit("b")));
  Configure("");
  EXPECT_FALSE(static_cast<bool>(Hit("b")));
}

TEST_F(FailpointTest, MalformedSpecsThrowAndLeaveConfigUntouched) {
  Configure("good=err:EIO");
  for (const char* bad :
       {"noequals", "=err", "x=bogus", "x=err:EWHAT", "x=err@",
        "x=err@0", "x=short:banana", "x=short:200%", "x=err@200%"}) {
    EXPECT_THROW(Configure(bad), std::runtime_error) << bad;
    EXPECT_TRUE(static_cast<bool>(Hit("good"))) << bad;
  }
}

TEST_F(FailpointTest, ClearDisarmsAndResetsCounts) {
  Configure("x=err");
  (void)Hit("x");
  EXPECT_EQ(FireCount("x"), 1u);
  Clear();
  EXPECT_FALSE(static_cast<bool>(Hit("x")));
  EXPECT_EQ(HitCount("x"), 0u);
  EXPECT_EQ(FireCount("x"), 0u);
}

#ifdef NDEBUG
TEST_F(FailpointTest, UnarmedFastPathIsCheap) {
  // The guard that keeps failpoints shippable: an unarmed Hit is one
  // relaxed load. The bound is deliberately loose (a slow CI machine must
  // not flake) — it exists to catch an accidental lock or allocation on
  // the fast path, which would blow past it by orders of magnitude.
  Clear();
  constexpr int kCalls = 1'000'000;
  const auto start = std::chrono::steady_clock::now();
  bool any = false;
  for (int i = 0; i < kCalls; ++i) {
    any |= static_cast<bool>(Hit("wal", ".fsync"));
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_FALSE(any);
  const double ns_per_call =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
              .count()) /
      kCalls;
  EXPECT_LT(ns_per_call, 150.0);
}
#endif  // NDEBUG

#else  // !CNE_FAILPOINTS_ENABLED

TEST(FailpointCompiledOutTest, StubsAreInertAndConfigureRefusesSpecs) {
  EXPECT_FALSE(kCompiledIn);
  EXPECT_FALSE(static_cast<bool>(Hit("wal", ".fsync")));
  EXPECT_NO_THROW(Configure(""));
  // A fault drill against a binary that cannot inject faults must fail
  // loudly, not silently pass faultless.
  EXPECT_THROW(Configure("wal.fsync=err"), std::runtime_error);
  EXPECT_EQ(HitCount("wal.fsync"), 0u);
  EXPECT_EQ(FireCount("wal.fsync"), 0u);
  EXPECT_EQ(Describe(), "");
}

#endif  // CNE_FAILPOINTS_ENABLED

}  // namespace
}  // namespace cne::fail
