#include "util/statistics.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace cne {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.Count(), 0u);
  EXPECT_EQ(stats.Mean(), 0.0);
  EXPECT_EQ(stats.Variance(), 0.0);
  EXPECT_EQ(stats.StdError(), 0.0);
}

TEST(RunningStatsTest, EmptyMinMaxAreNaN) {
  // "No observations" must be distinguishable from "observed 0.0".
  RunningStats stats;
  EXPECT_TRUE(std::isnan(stats.Min()));
  EXPECT_TRUE(std::isnan(stats.Max()));
  stats.Add(0.0);
  EXPECT_EQ(stats.Min(), 0.0);
  EXPECT_EQ(stats.Max(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats stats;
  stats.Add(3.5);
  EXPECT_EQ(stats.Count(), 1u);
  EXPECT_DOUBLE_EQ(stats.Mean(), 3.5);
  EXPECT_EQ(stats.Variance(), 0.0);
  EXPECT_EQ(stats.Min(), 3.5);
  EXPECT_EQ(stats.Max(), 3.5);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.Add(x);
  EXPECT_DOUBLE_EQ(stats.Mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squared deviations is 32.
  EXPECT_NEAR(stats.Variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(stats.Min(), 2.0);
  EXPECT_EQ(stats.Max(), 9.0);
}

TEST(RunningStatsTest, NumericallyStableForLargeOffsets) {
  RunningStats stats;
  const double offset = 1e9;
  for (double x : {offset + 1, offset + 2, offset + 3}) stats.Add(x);
  EXPECT_NEAR(stats.Mean(), offset + 2, 1e-3);
  EXPECT_NEAR(stats.Variance(), 1.0, 1e-6);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  RunningStats combined, a, b;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10;
    combined.Add(x);
    (i % 2 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.Count(), combined.Count());
  EXPECT_NEAR(a.Mean(), combined.Mean(), 1e-12);
  EXPECT_NEAR(a.Variance(), combined.Variance(), 1e-10);
  EXPECT_EQ(a.Min(), combined.Min());
  EXPECT_EQ(a.Max(), combined.Max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, empty;
  a.Add(1.0);
  a.Add(2.0);
  const double mean = a.Mean();
  a.Merge(empty);
  EXPECT_EQ(a.Count(), 2u);
  EXPECT_DOUBLE_EQ(a.Mean(), mean);
  empty.Merge(a);
  EXPECT_EQ(empty.Count(), 2u);
  EXPECT_DOUBLE_EQ(empty.Mean(), mean);
}

TEST(SummarizeTest, EmptySample) {
  const Summary s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(SummarizeTest, OrderStatistics) {
  const Summary s = Summarize({5.0, 1.0, 3.0, 2.0, 4.0});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 5.0);
}

TEST(SummarizeTest, P99TracksTheTail) {
  std::vector<double> values;
  for (int i = 1; i <= 100; ++i) values.push_back(static_cast<double>(i));
  const Summary s = Summarize(values);
  // QuantileSorted interpolates at 0.99 * (100 - 1) = position 98.01.
  EXPECT_NEAR(s.p99, 99.01, 1e-9);
  EXPECT_GE(s.p99, s.p95);
  EXPECT_LE(s.p99, s.max);
}

TEST(SummarizeTest, P999TracksTheExtremeTail) {
  std::vector<double> values;
  for (int i = 1; i <= 1000; ++i) values.push_back(static_cast<double>(i));
  const Summary s = Summarize(values);
  // QuantileSorted interpolates at 0.999 * (1000 - 1) = position 998.001.
  EXPECT_NEAR(s.p999, 999.001, 1e-9);
  EXPECT_GE(s.p999, s.p99);
  EXPECT_LE(s.p999, s.max);
}

TEST(QuantileTest, Interpolation) {
  const std::vector<double> sorted = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(QuantileSorted(sorted, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(QuantileSorted(sorted, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(QuantileSorted(sorted, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(QuantileSorted(sorted, 0.25), 2.5);
}

TEST(QuantileTest, ClampsOutOfRange) {
  const std::vector<double> sorted = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(QuantileSorted(sorted, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(QuantileSorted(sorted, 2.0), 3.0);
}

TEST(ErrorMetricsTest, MeanAbsoluteError) {
  EXPECT_DOUBLE_EQ(MeanAbsoluteError({1, 2, 3}, {1, 4, 1}), (0 + 2 + 2) / 3.0);
  EXPECT_EQ(MeanAbsoluteError({}, {}), 0.0);
}

TEST(ErrorMetricsTest, MeanRelativeErrorGuardsZeroTruth) {
  // truth 0 -> denominator max(0, 1) = 1.
  EXPECT_DOUBLE_EQ(MeanRelativeError({2.0}, {0.0}), 2.0);
  EXPECT_DOUBLE_EQ(MeanRelativeError({8.0}, {4.0}), 1.0);
}

TEST(ErrorMetricsTest, MeanSquaredError) {
  EXPECT_DOUBLE_EQ(MeanSquaredError({3.0, 1.0}, {1.0, 1.0}), 2.0);
}

TEST(HistogramTest, CountsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.Add(0.5);    // bucket 0
  h.Add(9.9);    // bucket 4
  h.Add(-5.0);   // clamped to bucket 0
  h.Add(100.0);  // clamped to bucket 4
  h.Add(5.0);    // bucket 2 (boundary rounds down into [4,6))
  EXPECT_EQ(h.Total(), 5u);
  EXPECT_EQ(h.BucketValue(0), 2u);
  EXPECT_EQ(h.BucketValue(2), 1u);
  EXPECT_EQ(h.BucketValue(4), 2u);
}

TEST(HistogramTest, BucketBoundaries) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.BucketLow(0), 0.0);
  EXPECT_DOUBLE_EQ(h.BucketHigh(0), 2.0);
  EXPECT_DOUBLE_EQ(h.BucketLow(4), 8.0);
  EXPECT_DOUBLE_EQ(h.BucketHigh(4), 10.0);
}

TEST(HistogramTest, AsciiRendering) {
  Histogram h(0.0, 2.0, 2);
  h.Add(0.5);
  h.Add(0.6);
  h.Add(1.5);
  const std::string art = h.ToAscii(10);
  EXPECT_NE(art.find("##########"), std::string::npos);  // full bar
  EXPECT_NE(art.find("#####\n"), std::string::npos);     // half bar
}

}  // namespace
}  // namespace cne
