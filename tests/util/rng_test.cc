#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "util/statistics.h"

namespace cne {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, ZeroSeedIsValid) {
  Rng rng(0);
  // The SplitMix64 expansion must avoid the all-zero xoshiro state, which
  // would make the stream constant.
  std::set<uint64_t> values;
  for (int i = 0; i < 32; ++i) values.insert(rng.NextU64());
  EXPECT_GT(values.size(), 30u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.Add(rng.NextDouble());
  // Standard error ~ 0.000913; allow 5 sigma.
  EXPECT_NEAR(stats.Mean(), 0.5, 5.0 * stats.StdError() + 1e-4);
}

TEST(RngTest, UniformIntWithinBound) {
  Rng rng(13);
  for (uint64_t bound : {1ULL, 2ULL, 7ULL, 100ULL, 1'000'000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.UniformInt(bound), bound);
    }
  }
}

TEST(RngTest, UniformIntIsRoughlyUniform) {
  Rng rng(17);
  const uint64_t bound = 10;
  std::vector<int> counts(bound, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.UniformInt(bound)];
  // Chi-squared with 9 dof; 99.9% quantile ~ 27.9.
  double chi2 = 0.0;
  const double expected = static_cast<double>(n) / bound;
  for (int c : counts) {
    chi2 += (c - expected) * (c - expected) / expected;
  }
  EXPECT_LT(chi2, 35.0);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(19);
  for (double p : {0.1, 0.25, 0.5, 0.9}) {
    int hits = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) hits += rng.Bernoulli(p);
    const double se = std::sqrt(p * (1 - p) / n);
    EXPECT_NEAR(static_cast<double>(hits) / n, p, 5 * se);
  }
}

TEST(RngTest, BernoulliDegenerateCases) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-0.5));
    EXPECT_TRUE(rng.Bernoulli(1.5));
  }
}

TEST(RngTest, LaplaceMeanAndVariance) {
  Rng rng(29);
  const double scale = 2.0;
  RunningStats stats;
  const int n = 200000;
  for (int i = 0; i < n; ++i) stats.Add(rng.Laplace(scale));
  // Laplace(b): mean 0, variance 2b^2 = 8.
  EXPECT_NEAR(stats.Mean(), 0.0, 5 * stats.StdError());
  EXPECT_NEAR(stats.Variance(), 2 * scale * scale, 0.3);
}

TEST(RngTest, LaplaceSymmetry) {
  Rng rng(31);
  int positive = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) positive += rng.Laplace(1.0) > 0;
  const double se = std::sqrt(0.25 / n);
  EXPECT_NEAR(static_cast<double>(positive) / n, 0.5, 5 * se);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(37);
  const double lambda = 3.0;
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.Add(rng.Exponential(lambda));
  EXPECT_NEAR(stats.Mean(), 1.0 / lambda, 0.01);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(41);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.Add(rng.Gaussian());
  EXPECT_NEAR(stats.Mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.Variance(), 1.0, 0.03);
}

TEST(RngTest, BinomialEdgeCases) {
  Rng rng(43);
  EXPECT_EQ(rng.Binomial(0, 0.5), 0u);
  EXPECT_EQ(rng.Binomial(100, 0.0), 0u);
  EXPECT_EQ(rng.Binomial(100, 1.0), 100u);
}

TEST(RngTest, BinomialMeanAndVariance) {
  Rng rng(47);
  const uint64_t n = 1000;
  const double p = 0.3;
  RunningStats stats;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    stats.Add(static_cast<double>(rng.Binomial(n, p)));
  }
  EXPECT_NEAR(stats.Mean(), n * p, 5 * stats.StdError());
  EXPECT_NEAR(stats.Variance(), n * p * (1 - p), 15.0);
}

TEST(RngTest, GeometricEdgeCases) {
  Rng rng(59);
  EXPECT_EQ(rng.Geometric(1.0), 0u);
}

TEST(RngTest, GeometricMatchesPmf) {
  // P(G = g) = (1-p)^g p: check mass at 0 and the mean (1-p)/p.
  Rng rng(61);
  const double p = 0.269;  // the ε = 1 flip probability regime
  RunningStats stats;
  int zeros = 0;
  const int trials = 40000;
  for (int i = 0; i < trials; ++i) {
    const uint64_t g = rng.Geometric(p);
    stats.Add(static_cast<double>(g));
    zeros += g == 0;
  }
  EXPECT_NEAR(stats.Mean(), (1 - p) / p, 5 * stats.StdError());
  EXPECT_NEAR(static_cast<double>(zeros) / trials, p,
              5 * std::sqrt(p * (1 - p) / trials));
}

TEST(RngTest, GeometricSkipSamplingMatchesBernoulliProcess) {
  // Visiting positions by Geometric gaps must mark each position of a
  // finite window independently with probability p — the property the
  // sparse RR sampler's flip-in generation relies on.
  Rng rng(67);
  const double p = 0.13;
  const uint64_t window = 50;
  std::vector<int> hits(window, 0);
  RunningStats counts;
  const int trials = 30000;
  for (int t = 0; t < trials; ++t) {
    int count = 0;
    for (uint64_t q = rng.Geometric(p); q < window;
         q += 1 + rng.Geometric(p)) {
      ++hits[q];
      ++count;
    }
    counts.Add(count);
  }
  EXPECT_NEAR(counts.Mean(), window * p, 5 * counts.StdError());
  for (uint64_t q = 0; q < window; ++q) {
    EXPECT_NEAR(static_cast<double>(hits[q]) / trials, p,
                5 * std::sqrt(p * (1 - p) / trials) + 1e-3)
        << "position " << q;
  }
}

TEST(RngTest, SampleWithoutReplacementBasics) {
  Rng rng(53);
  auto sample = rng.SampleWithoutReplacement(100, 10);
  EXPECT_EQ(sample.size(), 10u);
  std::set<uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
  for (uint64_t v : sample) EXPECT_LT(v, 100u);
}

TEST(RngTest, SampleWithoutReplacementFullRange) {
  Rng rng(59);
  auto sample = rng.SampleWithoutReplacement(20, 20);
  std::sort(sample.begin(), sample.end());
  for (uint64_t i = 0; i < 20; ++i) EXPECT_EQ(sample[i], i);
}

TEST(RngTest, SampleWithoutReplacementEmpty) {
  Rng rng(61);
  EXPECT_TRUE(rng.SampleWithoutReplacement(10, 0).empty());
  EXPECT_TRUE(rng.SampleWithoutReplacement(0, 0).empty());
}

TEST(RngTest, SampleWithoutReplacementUniformInclusion) {
  // Every element should be included with probability k/n.
  Rng rng(67);
  const uint64_t n = 20, k = 5;
  std::vector<int> counts(n, 0);
  const int trials = 40000;
  for (int t = 0; t < trials; ++t) {
    for (uint64_t v : rng.SampleWithoutReplacement(n, k)) ++counts[v];
  }
  const double expected = static_cast<double>(trials) * k / n;
  for (uint64_t v = 0; v < n; ++v) {
    EXPECT_NEAR(counts[v], expected, 6 * std::sqrt(expected))
        << "element " << v;
  }
}

TEST(RngTest, SplitStreamsAreIndependentlySeeded) {
  Rng parent(71);
  Rng child1 = parent.Split();
  Rng child2 = parent.Split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child1.NextU64() == child2.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, ForkIsDeterministicPerStream) {
  const Rng parent(73);
  Rng a = parent.Fork(5);
  Rng b = parent.Fork(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, ForkDoesNotAdvanceParent) {
  Rng forked(79), untouched(79);
  forked.Fork(0);
  forked.Fork(123456);
  // Fork is const: the parent stream continues exactly as if Fork had
  // never been called.
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(forked.NextU64(), untouched.NextU64());
  }
}

TEST(RngTest, ForkIsOrderIndependent) {
  const Rng parent(83);
  // Forking streams in any order — or from copies — yields identical
  // children; this is what makes multi-threaded execution reproducible.
  Rng first_then_second_a = parent.Fork(1);
  Rng second = parent.Fork(2);
  Rng first_then_second_b = parent.Fork(1);
  (void)second;
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(first_then_second_a.NextU64(), first_then_second_b.NextU64());
  }
}

TEST(RngTest, ForkStreamsDiverge) {
  const Rng parent(89);
  Rng a = parent.Fork(0);
  Rng b = parent.Fork(1);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, ForkStreamsAreStatisticallyIndependent) {
  // Pearson correlation between uniform draws of adjacent streams; also
  // checks each stream's mean individually so a bad mix in either shows.
  const Rng parent(97);
  const int n = 50000;
  for (uint64_t stream = 0; stream < 4; ++stream) {
    Rng a = parent.Fork(stream);
    Rng b = parent.Fork(stream + 1);
    double sum_a = 0, sum_b = 0, sum_aa = 0, sum_bb = 0, sum_ab = 0;
    for (int i = 0; i < n; ++i) {
      const double x = a.NextDouble();
      const double y = b.NextDouble();
      sum_a += x;
      sum_b += y;
      sum_aa += x * x;
      sum_bb += y * y;
      sum_ab += x * y;
    }
    const double mean_a = sum_a / n;
    const double mean_b = sum_b / n;
    const double cov = sum_ab / n - mean_a * mean_b;
    const double var_a = sum_aa / n - mean_a * mean_a;
    const double var_b = sum_bb / n - mean_b * mean_b;
    const double corr = cov / std::sqrt(var_a * var_b);
    // Under independence corr ~ N(0, 1/n): 5 sigma ~ 0.0224.
    EXPECT_LT(std::abs(corr), 0.0224) << "streams " << stream << ", "
                                      << stream + 1;
    EXPECT_NEAR(mean_a, 0.5, 0.01);
  }
}

TEST(RngTest, ForkOfForkDiverges) {
  // Nested forks (service root -> store base -> per-vertex stream) must
  // not collide with first-level streams of the same index.
  const Rng root(101);
  const Rng child = root.Fork(7);
  Rng nested = child.Fork(7);
  Rng flat = root.Fork(7);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (nested.NextU64() == flat.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  SUCCEED();
}

}  // namespace
}  // namespace cne
