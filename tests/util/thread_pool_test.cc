#include "util/thread_pool.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace cne {
namespace {

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.NumThreads(), 1);
  std::vector<int> out(100, 0);
  pool.ParallelFor(out.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) out[i] = static_cast<int>(i);
  });
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i));
  }
}

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.NumThreads(), threads);
    const size_t n = 10000;
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0);
    pool.ParallelFor(n, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
    });
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ThreadPoolTest, EmptyRangeIsANoop) {
  ThreadPool pool(4);
  bool called = false;
  pool.ParallelFor(0, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, RangeSmallerThanThreadCount) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(hits.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ReusableAcrossManyLoops) {
  ThreadPool pool(4);
  std::atomic<uint64_t> sum{0};
  for (int round = 0; round < 50; ++round) {
    pool.ParallelFor(100, [&](size_t begin, size_t end) {
      uint64_t local = 0;
      for (size_t i = begin; i < end; ++i) local += i;
      sum.fetch_add(local);
    });
  }
  EXPECT_EQ(sum.load(), 50ull * (99ull * 100ull / 2));
}

TEST(ThreadPoolTest, PerItemForkedNoiseIsThreadCountInvariant) {
  // The pattern the service layer relies on: item i draws from
  // root.Fork(i) into slot i, so the output vector is byte-identical for
  // any thread count.
  const Rng root(2024);
  auto run = [&](int threads) {
    ThreadPool pool(threads);
    std::vector<uint64_t> out(5000);
    pool.ParallelFor(out.size(), [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        Rng rng = root.Fork(i);
        out[i] = rng.NextU64();
      }
    });
    return out;
  };
  const std::vector<uint64_t> sequential = run(1);
  EXPECT_EQ(sequential, run(2));
  EXPECT_EQ(sequential, run(8));
}

}  // namespace
}  // namespace cne
