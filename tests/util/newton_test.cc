#include "util/newton.h"

#include <cmath>

#include <gtest/gtest.h>

namespace cne {
namespace {

TEST(GoldenSectionTest, Quadratic) {
  auto f = [](double x) { return (x - 3.0) * (x - 3.0) + 1.0; };
  const MinimizeResult r = GoldenSectionMinimize(f, 0.0, 10.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, 3.0, 1e-6);
  EXPECT_NEAR(r.value, 1.0, 1e-10);
}

TEST(GoldenSectionTest, MinimumAtLeftBoundary) {
  auto f = [](double x) { return x; };
  const MinimizeResult r = GoldenSectionMinimize(f, 2.0, 5.0);
  EXPECT_NEAR(r.x, 2.0, 1e-6);
  EXPECT_NEAR(r.value, 2.0, 1e-6);
}

TEST(GoldenSectionTest, MinimumAtRightBoundary) {
  auto f = [](double x) { return -x; };
  const MinimizeResult r = GoldenSectionMinimize(f, 2.0, 5.0);
  EXPECT_NEAR(r.x, 5.0, 1e-6);
}

TEST(NewtonMinimizeTest, Quadratic) {
  auto f = [](double x) { return 2.0 * (x - 1.5) * (x - 1.5); };
  const MinimizeResult r = NewtonMinimize(f, 0.0, 4.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, 1.5, 1e-6);
}

TEST(NewtonMinimizeTest, TranscendentalObjective) {
  // Shape similar to the budget-allocation loss: diverges at both ends.
  auto f = [](double x) { return std::exp(x) / (x * x) + 1.0 / (2.0 - x); };
  const MinimizeResult r = NewtonMinimize(f, 0.05, 1.95);
  // Verify stationarity numerically.
  const double h = 1e-5;
  const double grad = (f(r.x + h) - f(r.x - h)) / (2 * h);
  EXPECT_NEAR(grad, 0.0, 1e-2);
}

TEST(NewtonMinimizeTest, FallsBackOnConcaveRegion) {
  // -cos has negative curvature near the interval center x=pi; Newton must
  // fall back to golden-section and still find the minimum at the boundary.
  auto f = [](double x) { return std::cos(x); };
  const MinimizeResult r = NewtonMinimize(f, 2.0, 4.5);
  EXPECT_NEAR(r.x, M_PI, 1e-5);
}

TEST(NewtonMinimizeTest, DegenerateInterval) {
  auto f = [](double x) { return x * x; };
  const MinimizeResult r = NewtonMinimize(f, 1.0, 1.0 + 1e-12);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, 1.0, 1e-9);
}

TEST(NewtonMinimizeTest, NeverWorseThanGolden) {
  auto f = [](double x) {
    return std::sin(3 * x) + 0.1 * (x - 2.0) * (x - 2.0);
  };
  const MinimizeResult newton = NewtonMinimize(f, 0.0, 4.0);
  const MinimizeResult golden = GoldenSectionMinimize(f, 0.0, 4.0);
  EXPECT_LE(newton.value, golden.value + 1e-9);
}

TEST(BisectRootTest, FindsRoot) {
  auto f = [](double x) { return x * x - 2.0; };
  EXPECT_NEAR(BisectRoot(f, 0.0, 2.0), std::sqrt(2.0), 1e-9);
}

TEST(BisectRootTest, LinearFunction) {
  auto f = [](double x) { return 3.0 * x - 6.0; };
  EXPECT_NEAR(BisectRoot(f, -10.0, 10.0), 2.0, 1e-9);
}

}  // namespace
}  // namespace cne
