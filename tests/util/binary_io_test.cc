#include "util/binary_io.h"

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/crc32.h"

namespace cne {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

TEST(Crc32Test, MatchesKnownVectors) {
  // The IEEE check value: CRC-32 of the ASCII digits "123456789".
  const char digits[] = "123456789";
  EXPECT_EQ(Crc32(digits, 9), 0xCBF43926u);
  EXPECT_EQ(Crc32(nullptr, 0), 0u);
  const char empty_then_a[] = "a";
  EXPECT_EQ(Crc32(empty_then_a, 1), 0xE8B7BE43u);
}

TEST(Crc32Test, ChainingEqualsOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t whole = Crc32(data.data(), data.size());
  for (size_t split : {size_t{0}, size_t{1}, size_t{17}, data.size()}) {
    const uint32_t first = Crc32(data.data(), split);
    const uint32_t chained =
        Crc32(data.data() + split, data.size() - split, first);
    EXPECT_EQ(chained, whole) << "split at " << split;
  }
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::vector<uint8_t> bytes(64, 0xAB);
  const uint32_t clean = Crc32(bytes.data(), bytes.size());
  bytes[37] ^= 0x04;
  EXPECT_NE(Crc32(bytes.data(), bytes.size()), clean);
}

TEST(ByteIoTest, RoundTripsEveryType) {
  ByteWriter w;
  w.U8(0xFE);
  w.U32(0xDEADBEEFu);
  w.U64(0x0123456789ABCDEFull);
  w.F64(-1234.5678);
  w.F64(0.0);
  const char blob[5] = {'c', 'n', 'e', '!', '\0'};
  w.Bytes(blob, sizeof(blob));

  ByteReader r(w.data());
  EXPECT_EQ(r.U8(), 0xFE);
  EXPECT_EQ(r.U32(), 0xDEADBEEFu);
  EXPECT_EQ(r.U64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.F64(), -1234.5678);
  EXPECT_EQ(r.F64(), 0.0);
  char out[5];
  r.Bytes(out, sizeof(out));
  EXPECT_EQ(std::string(out), "cne!");
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ByteIoTest, EncodingIsLittleEndian) {
  ByteWriter w;
  w.U32(0x01020304u);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.data()[0], 0x04);
  EXPECT_EQ(w.data()[3], 0x01);
}

TEST(ByteIoTest, OverrunThrowsInsteadOfReadingGarbage) {
  ByteWriter w;
  w.U32(7);
  ByteReader r(w.data());
  EXPECT_EQ(r.U32(), 7u);
  EXPECT_THROW(r.U8(), std::runtime_error);
  ByteReader r2(w.data());
  EXPECT_THROW(r2.U64(), std::runtime_error);
  EXPECT_THROW(ByteReader(w.data()).Borrow(5), std::runtime_error);
}

TEST(ByteIoTest, BorrowAdvancesWithoutCopy) {
  ByteWriter w;
  w.U8(1);
  w.U8(2);
  w.U8(3);
  ByteReader r(w.data());
  const auto view = r.Borrow(2);
  EXPECT_EQ(view[0], 1);
  EXPECT_EQ(view[1], 2);
  EXPECT_EQ(r.U8(), 3);
}

TEST(FileIoTest, AtomicWriteRoundTripsAndReplaces) {
  const std::string path = TempPath("binary_io_atomic.bin");
  ByteWriter w;
  w.U64(42);
  WriteFileAtomic(path, w.data());
  EXPECT_TRUE(FileExists(path));
  EXPECT_EQ(ByteReader(ReadFileBytes(path)).U64(), 42u);

  // Overwrite: the reader must see the complete new content.
  ByteWriter w2;
  w2.U64(43);
  w2.U64(44);
  WriteFileAtomic(path, w2.data());
  const auto bytes = ReadFileBytes(path);
  ASSERT_EQ(bytes.size(), 16u);
  EXPECT_EQ(ByteReader(bytes).U64(), 43u);
  // No temp file left behind.
  EXPECT_FALSE(FileExists(path + ".tmp"));
  std::filesystem::remove(path);
}

TEST(FileIoTest, MissingFileThrows) {
  EXPECT_FALSE(FileExists(TempPath("does_not_exist.bin")));
  EXPECT_THROW(ReadFileBytes(TempPath("does_not_exist.bin")),
               std::runtime_error);
}

}  // namespace
}  // namespace cne
