#include "util/binary_io.h"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/crc32.h"
#include "util/failpoint.h"

namespace cne {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

TEST(Crc32Test, MatchesKnownVectors) {
  // The IEEE check value: CRC-32 of the ASCII digits "123456789".
  const char digits[] = "123456789";
  EXPECT_EQ(Crc32(digits, 9), 0xCBF43926u);
  EXPECT_EQ(Crc32(nullptr, 0), 0u);
  const char empty_then_a[] = "a";
  EXPECT_EQ(Crc32(empty_then_a, 1), 0xE8B7BE43u);
}

TEST(Crc32Test, ChainingEqualsOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t whole = Crc32(data.data(), data.size());
  for (size_t split : {size_t{0}, size_t{1}, size_t{17}, data.size()}) {
    const uint32_t first = Crc32(data.data(), split);
    const uint32_t chained =
        Crc32(data.data() + split, data.size() - split, first);
    EXPECT_EQ(chained, whole) << "split at " << split;
  }
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::vector<uint8_t> bytes(64, 0xAB);
  const uint32_t clean = Crc32(bytes.data(), bytes.size());
  bytes[37] ^= 0x04;
  EXPECT_NE(Crc32(bytes.data(), bytes.size()), clean);
}

TEST(ByteIoTest, RoundTripsEveryType) {
  ByteWriter w;
  w.U8(0xFE);
  w.U32(0xDEADBEEFu);
  w.U64(0x0123456789ABCDEFull);
  w.F64(-1234.5678);
  w.F64(0.0);
  const char blob[5] = {'c', 'n', 'e', '!', '\0'};
  w.Bytes(blob, sizeof(blob));

  ByteReader r(w.data());
  EXPECT_EQ(r.U8(), 0xFE);
  EXPECT_EQ(r.U32(), 0xDEADBEEFu);
  EXPECT_EQ(r.U64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.F64(), -1234.5678);
  EXPECT_EQ(r.F64(), 0.0);
  char out[5];
  r.Bytes(out, sizeof(out));
  EXPECT_EQ(std::string(out), "cne!");
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ByteIoTest, EncodingIsLittleEndian) {
  ByteWriter w;
  w.U32(0x01020304u);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.data()[0], 0x04);
  EXPECT_EQ(w.data()[3], 0x01);
}

TEST(ByteIoTest, OverrunThrowsInsteadOfReadingGarbage) {
  ByteWriter w;
  w.U32(7);
  ByteReader r(w.data());
  EXPECT_EQ(r.U32(), 7u);
  EXPECT_THROW(r.U8(), std::runtime_error);
  ByteReader r2(w.data());
  EXPECT_THROW(r2.U64(), std::runtime_error);
  EXPECT_THROW(ByteReader(w.data()).Borrow(5), std::runtime_error);
}

TEST(ByteIoTest, BorrowAdvancesWithoutCopy) {
  ByteWriter w;
  w.U8(1);
  w.U8(2);
  w.U8(3);
  ByteReader r(w.data());
  const auto view = r.Borrow(2);
  EXPECT_EQ(view[0], 1);
  EXPECT_EQ(view[1], 2);
  EXPECT_EQ(r.U8(), 3);
}

TEST(FileIoTest, AtomicWriteRoundTripsAndReplaces) {
  const std::string path = TempPath("binary_io_atomic.bin");
  ByteWriter w;
  w.U64(42);
  WriteFileAtomic(path, w.data());
  EXPECT_TRUE(FileExists(path));
  EXPECT_EQ(ByteReader(ReadFileBytes(path)).U64(), 42u);

  // Overwrite: the reader must see the complete new content.
  ByteWriter w2;
  w2.U64(43);
  w2.U64(44);
  WriteFileAtomic(path, w2.data());
  const auto bytes = ReadFileBytes(path);
  ASSERT_EQ(bytes.size(), 16u);
  EXPECT_EQ(ByteReader(bytes).U64(), 43u);
  // No temp file left behind.
  EXPECT_FALSE(FileExists(path + ".tmp"));
  std::filesystem::remove(path);
}

TEST(FileIoTest, MissingFileThrows) {
  EXPECT_FALSE(FileExists(TempPath("does_not_exist.bin")));
  EXPECT_THROW(ReadFileBytes(TempPath("does_not_exist.bin")),
               std::runtime_error);
}

TEST(FileIoTest, ErrnoTextReachesTheException) {
  try {
    ReadFileBytes(TempPath("does_not_exist.bin"));
    FAIL() << "expected a throw";
  } catch (const std::runtime_error& e) {
    // Every syscall failure must carry the strerror text — a bare
    // "cannot open" with no cause is undebuggable in a crash report.
    EXPECT_NE(std::string(e.what()).find("No such file"), std::string::npos)
        << e.what();
  }
}

#if CNE_FAILPOINTS_ENABLED

// --- Disk-full (and friends) drills for the atomic-write commit path:
// --- whatever step fails, the destination is either absent or the
// --- complete old file — never torn, never the new bytes partially.

class AtomicWriteFaultTest : public ::testing::Test {
 protected:
  void TearDown() override { fail::Clear(); }

  static std::vector<uint8_t> Payload(uint8_t fill) {
    return std::vector<uint8_t>(4096, fill);
  }

  // Destination holds exactly the old payload; no stray temp file.
  static void ExpectOldFileIntact(const std::string& path) {
    ASSERT_TRUE(FileExists(path));
    EXPECT_EQ(ReadFileBytes(path), Payload(0xAA));
    EXPECT_FALSE(FileExists(path + ".tmp"));
  }
};

TEST_F(AtomicWriteFaultTest, EnospcAtEveryStepLeavesOldFileComplete) {
  for (const char* step : {"open", "write", "fsync", "rename"}) {
    const std::string path =
        TempPath(std::string("atomic_enospc_") + step + ".bin");
    WriteFileAtomic(path, Payload(0xAA));
    fail::Configure(std::string("t.") + step + "=err:ENOSPC");
    AtomicWriteOptions options;
    options.site = "t";
    const std::vector<uint8_t> next = Payload(0xBB);
    const std::span<const uint8_t> parts[] = {next};
    try {
      WriteFileAtomic(path, parts, options);
      FAIL() << "expected ENOSPC at step " << step;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("No space left"),
                std::string::npos)
          << step << ": " << e.what();
    }
    ExpectOldFileIntact(path);
    fail::Clear();
    std::filesystem::remove(path);
  }
}

TEST_F(AtomicWriteFaultTest, EnospcWithNoPriorFileLeavesNothing) {
  const std::string path = TempPath("atomic_enospc_fresh.bin");
  std::filesystem::remove(path);
  fail::Configure("t.write=err:ENOSPC");
  AtomicWriteOptions options;
  options.site = "t";
  const std::vector<uint8_t> bytes = Payload(0xBB);
  const std::span<const uint8_t> parts[] = {bytes};
  EXPECT_THROW(WriteFileAtomic(path, parts, options), std::runtime_error);
  EXPECT_FALSE(FileExists(path));
  EXPECT_FALSE(FileExists(path + ".tmp"));
}

TEST_F(AtomicWriteFaultTest, QuarantineKeepsTheFailedTempFile) {
  const std::string path = TempPath("atomic_quarantine.bin");
  WriteFileAtomic(path, Payload(0xAA));
  fail::Configure("t.fsync=err:EIO");
  AtomicWriteOptions options;
  options.site = "t";
  options.quarantine_tmp = true;
  const std::vector<uint8_t> bytes = Payload(0xBB);
  const std::span<const uint8_t> parts[] = {bytes};
  EXPECT_THROW(WriteFileAtomic(path, parts, options), std::runtime_error);
  ExpectOldFileIntact(path);
  EXPECT_TRUE(FileExists(path + ".tmp.quarantine"));
  std::filesystem::remove(path + ".tmp.quarantine");
  std::filesystem::remove(path);
}

TEST_F(AtomicWriteFaultTest, ShortWritesRetryToCompletion) {
  // A short write is not an error — the loop must re-issue the remainder
  // and commit the full payload.
  const std::string path = TempPath("atomic_short.bin");
  fail::Configure("t.write=short:7");
  AtomicWriteOptions options;
  options.site = "t";
  const std::vector<uint8_t> bytes = Payload(0xCC);
  const std::span<const uint8_t> parts[] = {bytes};
  WriteFileAtomic(path, parts, options);
  fail::Clear();
  EXPECT_EQ(ReadFileBytes(path), Payload(0xCC));
  std::filesystem::remove(path);
}

TEST_F(AtomicWriteFaultTest, DirFsyncFailureThrowsAfterCommit) {
  // The rename itself succeeded, so the new content is in place — but the
  // caller is told durability is not guaranteed.
  const std::string path = TempPath("atomic_dirfsync.bin");
  fail::Configure("t.dirfsync=err:EIO");
  AtomicWriteOptions options;
  options.site = "t";
  const std::vector<uint8_t> bytes = Payload(0xDD);
  const std::span<const uint8_t> parts[] = {bytes};
  EXPECT_THROW(WriteFileAtomic(path, parts, options), std::runtime_error);
  fail::Clear();
  EXPECT_EQ(ReadFileBytes(path), Payload(0xDD));
  std::filesystem::remove(path);
}

class ReadFaultTest : public ::testing::Test {
 protected:
  void TearDown() override { fail::Clear(); }
};

TEST_F(ReadFaultTest, ShortReadThrowsInsteadOfZeroPadding) {
  const std::string path = TempPath("read_short.bin");
  WriteFileAtomic(path, std::vector<uint8_t>(1000, 0x11));
  fail::Configure("t.read=short:100");
  try {
    ReadFileBytes(path, "t");
    FAIL() << "expected a short-read throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("short read"), std::string::npos)
        << e.what();
  }
  fail::Clear();
  std::filesystem::remove(path);
}

TEST_F(ReadFaultTest, TruncatedUnderneathThrowsWithoutFailpoints) {
  // The real-world version of the short read: the file shrinks between
  // fstat and read (no failpoint involved — genuine EOF handling).
  const std::string path = TempPath("read_truncated.bin");
  WriteFileAtomic(path, std::vector<uint8_t>(64, 0x22));
  {
    // Re-open with truncation to 10 bytes *after* measuring: simulate by
    // writing a shorter file non-atomically over the same inode.
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write("0123456789", 10);
  }
  const auto bytes = ReadFileBytes(path);  // consistent again: fine
  EXPECT_EQ(bytes.size(), 10u);
  std::filesystem::remove(path);
}

TEST_F(ReadFaultTest, CorruptInjectionFlipsExactlyOneByte) {
  const std::string path = TempPath("read_corrupt.bin");
  const std::vector<uint8_t> clean(32, 0x00);
  WriteFileAtomic(path, clean);
  fail::Configure("t.read=corrupt:5");
  const auto corrupted = ReadFileBytes(path, "t");
  fail::Clear();
  ASSERT_EQ(corrupted.size(), clean.size());
  EXPECT_EQ(corrupted[5], 0xFF);
  for (size_t i = 0; i < corrupted.size(); ++i) {
    if (i != 5) {
      EXPECT_EQ(corrupted[i], 0x00) << i;
    }
  }
}

#endif  // CNE_FAILPOINTS_ENABLED

}  // namespace
}  // namespace cne
