#include "util/table.h"

#include <sstream>

#include <gtest/gtest.h>

namespace cne {
namespace {

TEST(TextTableTest, AlignedOutput) {
  TextTable t({"name", "value"});
  t.NewRow().Add("short").AddInt(1);
  t.NewRow().Add("a-much-longer-name").AddInt(22);
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("a-much-longer-name"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTableTest, CsvOutput) {
  TextTable t({"a", "b"});
  t.NewRow().AddInt(1).AddDouble(2.5, 1);
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2.5\n");
}

TEST(TextTableTest, NumRows) {
  TextTable t({"x"});
  EXPECT_EQ(t.NumRows(), 0u);
  t.NewRow().AddInt(1);
  t.NewRow().AddInt(2);
  EXPECT_EQ(t.NumRows(), 2u);
}

TEST(FormatTest, FixedAndScientific) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatSci(12345.0, 2), "1.23e+04");
}

TEST(FormatTest, Bytes) {
  EXPECT_EQ(FormatBytes(512), "512.00 B");
  EXPECT_EQ(FormatBytes(2048), "2.00 KB");
  EXPECT_EQ(FormatBytes(3.5 * 1024 * 1024), "3.50 MB");
  EXPECT_EQ(FormatBytes(1024.0 * 1024 * 1024 * 2), "2.00 GB");
}

}  // namespace
}  // namespace cne
