#include "eval/query_sampler.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/graph_builder.h"

namespace cne {
namespace {

TEST(UniformPairsTest, CountLayerAndDistinctness) {
  Rng gen(1);
  const BipartiteGraph g = ErdosRenyiBipartite(100, 80, 500, gen);
  Rng rng(2);
  const auto pairs = SampleUniformPairs(g, Layer::kUpper, 50, rng);
  ASSERT_EQ(pairs.size(), 50u);
  for (const QueryPair& p : pairs) {
    EXPECT_EQ(p.layer, Layer::kUpper);
    EXPECT_NE(p.u, p.w);
    EXPECT_LT(p.u, 100u);
    EXPECT_LT(p.w, 100u);
  }
}

TEST(UniformPairsTest, CoversTheLayer) {
  Rng gen(3);
  const BipartiteGraph g = ErdosRenyiBipartite(10, 10, 50, gen);
  Rng rng(4);
  const auto pairs = SampleUniformPairs(g, Layer::kLower, 500, rng);
  std::vector<int> seen(10, 0);
  for (const QueryPair& p : pairs) {
    ++seen[p.u];
    ++seen[p.w];
  }
  for (int c : seen) EXPECT_GT(c, 50);  // expected 100 each
}

TEST(UniformPairsTest, TwoVertexLayer) {
  GraphBuilder b(2, 3);
  b.AddEdge(0, 0).AddEdge(1, 1);
  const BipartiteGraph g = b.Build();
  Rng rng(5);
  const auto pairs = SampleUniformPairs(g, Layer::kUpper, 10, rng);
  for (const QueryPair& p : pairs) {
    EXPECT_NE(p.u, p.w);
  }
}

TEST(ImbalancedPairsTest, RespectsKappa) {
  Rng gen(6);
  const BipartiteGraph g = ChungLuPowerLaw(2000, 2000, 20000, 2.0, gen);
  Rng rng(7);
  for (double kappa : {1.0, 10.0, 50.0}) {
    const auto pairs =
        SampleImbalancedPairs(g, Layer::kUpper, kappa, 30, rng);
    for (const QueryPair& p : pairs) {
      const double du = g.Degree(p.layer, p.u);
      const double dw = g.Degree(p.layer, p.w);
      EXPECT_GE(std::min(du, dw), 1.0);
      EXPECT_GT(std::max(du, dw), kappa * std::min(du, dw))
          << "kappa=" << kappa;
    }
  }
}

TEST(ImbalancedPairsTest, ReturnsEmptyWhenImpossible) {
  // Regular graph: every degree equal, no pair can exceed kappa=2.
  const BipartiteGraph g = CompleteBipartite(10, 10);
  Rng rng(8);
  const auto pairs = SampleImbalancedPairs(g, Layer::kUpper, 2.0, 5, rng);
  EXPECT_TRUE(pairs.empty());
}

TEST(ImbalancedPairsTest, SkipsIsolatedVertices) {
  // Isolated vertices can never appear (min degree 1 required).
  const BipartiteGraph g = PlantedCommonNeighbors(2, 30, 0, 10, 5);
  Rng rng(9);
  const auto pairs = SampleImbalancedPairs(g, Layer::kLower, 3.0, 10, rng);
  for (const QueryPair& p : pairs) {
    EXPECT_GE(g.Degree(p.layer, p.u), 1u);
    EXPECT_GE(g.Degree(p.layer, p.w), 1u);
  }
}

TEST(FindPairWithDegreesTest, ExactMatchesWhenPresent) {
  // Lower degrees: u0 -> 8, u1 -> 2 (planted 2+6 exclusive / 2+0).
  const BipartiteGraph g = PlantedCommonNeighbors(2, 6, 0, 10);
  const QueryPair p =
      FindPairWithDegrees(g, Layer::kLower, 8, 2);
  EXPECT_EQ(g.Degree(p.layer, p.u), 8u);
  EXPECT_EQ(g.Degree(p.layer, p.w), 2u);
  EXPECT_NE(p.u, p.w);
}

TEST(FindPairWithDegreesTest, ApproximatesWhenAbsent) {
  const BipartiteGraph g = PlantedCommonNeighbors(2, 6, 0, 10);
  // No vertex has degree 100; the closest (8) is chosen, distinct from w.
  const QueryPair p = FindPairWithDegrees(g, Layer::kLower, 100, 2);
  EXPECT_NE(p.u, p.w);
  EXPECT_EQ(g.Degree(p.layer, p.u), 8u);
}

}  // namespace
}  // namespace cne
