// End-to-end checks on the bundled sample dataset (data/
// sample_userpage.txt): the file-based ingestion path feeding the full
// estimator stack, as a downstream user would run it.

#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "core/estimator.h"
#include "eval/experiment.h"
#include "eval/query_sampler.h"
#include "graph/graph_io.h"

namespace cne {
namespace {

std::string SamplePath() {
  // ctest runs from the build tree; the data file lives in the source
  // tree. CNE_SOURCE_DIR is injected by tests/CMakeLists.txt.
  const char* root = std::getenv("CNE_SOURCE_DIR");
  return std::string(root ? root : ".") + "/data/sample_userpage.txt";
}

TEST(SampleDataTest, LoadsWithExpectedShape) {
  const BipartiteGraph g = ReadEdgeListFile(SamplePath());
  // The text format infers layer sizes from the edges, so trailing
  // isolated vertices are dropped; sizes are bounded by the generator's.
  EXPECT_EQ(g.NumEdges(), 1400u);
  EXPECT_LE(g.NumUpper(), 120u);
  EXPECT_GE(g.NumUpper(), 100u);
  EXPECT_LE(g.NumLower(), 300u);
  EXPECT_GE(g.NumLower(), 250u);
}

TEST(SampleDataTest, FullRosterRunsOnFileGraph) {
  const BipartiteGraph g = ReadEdgeListFile(SamplePath());
  Rng rng(1);
  const auto pairs = SampleUniformPairs(g, Layer::kUpper, 10, rng);
  const auto roster = MakeAllEstimators();
  const auto metrics = RunAllEstimators(g, roster, pairs, {}, rng);
  ASSERT_EQ(metrics.size(), roster.size());
  for (const auto& m : metrics) {
    EXPECT_EQ(m.num_queries, 10u) << m.estimator;
    EXPECT_GE(m.mean_absolute_error, 0.0) << m.estimator;
  }
}

TEST(SampleDataTest, DeterministicReload) {
  const BipartiteGraph a = ReadEdgeListFile(SamplePath());
  const BipartiteGraph b = ReadEdgeListFile(SamplePath());
  EXPECT_EQ(a.EdgeList(), b.EdgeList());
}

}  // namespace
}  // namespace cne
