#include "eval/experiment.h"

#include <gtest/gtest.h>

#include "core/central_dp.h"
#include "core/multir_ss.h"
#include "core/naive.h"
#include "eval/query_sampler.h"
#include "graph/generators.h"

namespace cne {
namespace {

TEST(RunEstimatorTest, PopulatesAllMetrics) {
  Rng gen(1);
  const BipartiteGraph g = ErdosRenyiBipartite(60, 60, 600, gen);
  Rng rng(2);
  const auto pairs = SampleUniformPairs(g, Layer::kLower, 20, rng);
  MultiRSSEstimator ss;
  ExperimentConfig config;
  config.epsilon = 2.0;
  const EstimatorMetrics m = RunEstimator(g, ss, pairs, config, rng);
  EXPECT_EQ(m.estimator, "MultiR-SS");
  EXPECT_EQ(m.num_queries, 20u);
  EXPECT_GE(m.mean_absolute_error, 0.0);
  EXPECT_GE(m.mean_squared_error, 0.0);
  EXPECT_GT(m.mean_comm_bytes, 0.0);
  EXPECT_GT(m.total_seconds, 0.0);
  EXPECT_GE(m.mean_truth, 0.0);
}

TEST(RunEstimatorTest, TrialsMultiplyQueries) {
  Rng gen(3);
  const BipartiteGraph g = ErdosRenyiBipartite(30, 30, 200, gen);
  Rng rng(4);
  const auto pairs = SampleUniformPairs(g, Layer::kLower, 5, rng);
  CentralDpEstimator central;
  ExperimentConfig config;
  config.trials_per_pair = 7;
  const EstimatorMetrics m = RunEstimator(g, central, pairs, config, rng);
  EXPECT_EQ(m.num_queries, 35u);
}

TEST(RunEstimatorTest, CentralDpErrorNearLaplaceExpectation) {
  Rng gen(5);
  const BipartiteGraph g = ErdosRenyiBipartite(40, 40, 300, gen);
  Rng rng(6);
  const auto pairs = SampleUniformPairs(g, Layer::kLower, 50, rng);
  CentralDpEstimator central;
  ExperimentConfig config;
  config.epsilon = 2.0;
  config.trials_per_pair = 40;
  const EstimatorMetrics m = RunEstimator(g, central, pairs, config, rng);
  // E|Lap(1/2)| = 1/2.
  EXPECT_NEAR(m.mean_absolute_error, 0.5, 0.08);
}

TEST(RunAllEstimatorsTest, OneMetricsPerEstimator) {
  Rng gen(7);
  const BipartiteGraph g = ErdosRenyiBipartite(50, 50, 400, gen);
  Rng rng(8);
  const auto pairs = SampleUniformPairs(g, Layer::kLower, 10, rng);
  std::vector<std::unique_ptr<CommonNeighborEstimator>> roster;
  roster.push_back(std::make_unique<NaiveEstimator>());
  roster.push_back(std::make_unique<MultiRSSEstimator>());
  const auto all = RunAllEstimators(g, roster, pairs, {}, rng);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].estimator, "Naive");
  EXPECT_EQ(all[1].estimator, "MultiR-SS");
}

TEST(RunAllEstimatorsTest, IndependentStreamsAreReproducible) {
  Rng gen(9);
  const BipartiteGraph g = ErdosRenyiBipartite(50, 50, 400, gen);
  Rng sample_rng(10);
  const auto pairs = SampleUniformPairs(g, Layer::kLower, 10, sample_rng);
  std::vector<std::unique_ptr<CommonNeighborEstimator>> roster;
  roster.push_back(std::make_unique<MultiRSSEstimator>());
  Rng rng_a(42), rng_b(42);
  const auto a = RunAllEstimators(g, roster, pairs, {}, rng_a);
  const auto b = RunAllEstimators(g, roster, pairs, {}, rng_b);
  EXPECT_DOUBLE_EQ(a[0].mean_absolute_error, b[0].mean_absolute_error);
}

TEST(MakeAllEstimatorsTest, FullRoster) {
  const auto roster = MakeAllEstimators();
  ASSERT_EQ(roster.size(), 6u);
  EXPECT_EQ(roster[0]->Name(), "Naive");
  EXPECT_EQ(roster[5]->Name(), "CentralDP");
}

}  // namespace
}  // namespace cne
