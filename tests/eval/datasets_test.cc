#include "eval/datasets.h"

#include <set>

#include <gtest/gtest.h>

namespace cne {
namespace {

TEST(DatasetRegistryTest, FifteenDatasetsInTableOrder) {
  const auto& all = AllDatasets();
  ASSERT_EQ(all.size(), 15u);
  EXPECT_EQ(all.front().code, "RM");
  EXPECT_EQ(all.back().code, "OG");
}

TEST(DatasetRegistryTest, CodesAreUnique) {
  std::set<std::string> codes;
  for (const auto& spec : AllDatasets()) codes.insert(spec.code);
  EXPECT_EQ(codes.size(), AllDatasets().size());
}

TEST(DatasetRegistryTest, PaperSizesMatchTable2) {
  const auto rm = FindDataset("RM");
  ASSERT_TRUE(rm.has_value());
  EXPECT_EQ(rm->paper_upper, 1200u);
  EXPECT_EQ(rm->paper_lower, 8100u);
  EXPECT_EQ(rm->paper_edges, 58000u);
  const auto og = FindDataset("OG");
  ASSERT_TRUE(og.has_value());
  EXPECT_EQ(og->paper_edges, 327'000'000u);
}

TEST(DatasetRegistryTest, SmallDatasetsAreFullScale) {
  for (const char* code : {"RM", "AC", "OC", "DA", "BP", "MT", "BX", "SO",
                           "TM"}) {
    const auto spec = FindDataset(code);
    ASSERT_TRUE(spec.has_value()) << code;
    EXPECT_EQ(spec->gen_upper, spec->paper_upper) << code;
    EXPECT_EQ(spec->gen_lower, spec->paper_lower) << code;
    EXPECT_EQ(spec->gen_edges, spec->paper_edges) << code;
  }
}

TEST(DatasetRegistryTest, LargeDatasetsAreScaledDown) {
  for (const char* code : {"WC", "ML", "ER", "NX", "DUI", "OG"}) {
    const auto spec = FindDataset(code);
    ASSERT_TRUE(spec.has_value()) << code;
    EXPECT_LT(spec->gen_edges, spec->paper_edges) << code;
    EXPECT_LE(spec->gen_edges, 2'100'000u) << code;
  }
}

TEST(DatasetRegistryTest, LookupIsCaseInsensitiveWithAlias) {
  EXPECT_TRUE(FindDataset("rm").has_value());
  EXPECT_TRUE(FindDataset("Rm").has_value());
  // Fig. 6 axis label "DU" aliases Delicious-ui.
  const auto du = FindDataset("DU");
  ASSERT_TRUE(du.has_value());
  EXPECT_EQ(du->code, "DUI");
  EXPECT_FALSE(FindDataset("NOPE").has_value());
}

TEST(DatasetRegistryTest, CandidatePoolIsOppositeLayer) {
  const auto rm = FindDataset("RM");
  ASSERT_TRUE(rm.has_value());
  ASSERT_EQ(rm->query_layer, Layer::kUpper);
  EXPECT_EQ(rm->CandidatePoolSize(), rm->gen_lower);
}

TEST(MakeDatasetTest, GeneratesRequestedShape) {
  const auto rm = FindDataset("RM");
  ASSERT_TRUE(rm.has_value());
  const BipartiteGraph g = MakeDataset(*rm);
  EXPECT_EQ(g.NumUpper(), rm->gen_upper);
  EXPECT_EQ(g.NumLower(), rm->gen_lower);
  EXPECT_EQ(g.NumEdges(), rm->gen_edges);
}

TEST(MakeDatasetTest, DeterministicAcrossCalls) {
  const auto rm = FindDataset("RM");
  ASSERT_TRUE(rm.has_value());
  const BipartiteGraph g1 = MakeDataset(*rm);
  const BipartiteGraph g2 = MakeDataset(*rm);
  EXPECT_EQ(g1.EdgeList(), g2.EdgeList());
}

TEST(MakeDatasetTest, PowerLawSkew) {
  const auto rm = FindDataset("RM");
  ASSERT_TRUE(rm.has_value());
  const BipartiteGraph g = MakeDataset(*rm);
  EXPECT_GT(g.MaxDegree(Layer::kUpper),
            5 * static_cast<VertexId>(g.AverageDegree(Layer::kUpper)));
}

TEST(ResolveDatasetsTest, EmptyMeansAll) {
  EXPECT_EQ(ResolveDatasets({}).size(), 15u);
}

TEST(ResolveDatasetsTest, SubsetInOrderGiven) {
  const auto specs = ResolveDatasets({"TM", "RM"});
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].code, "TM");
  EXPECT_EQ(specs[1].code, "RM");
}

TEST(ResolveDatasetsDeathTest, UnknownCodeIsFatal) {
  EXPECT_DEATH(ResolveDatasets({"XX"}), "unknown dataset");
}

}  // namespace
}  // namespace cne
