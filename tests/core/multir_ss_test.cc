#include "core/multir_ss.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/theory.h"
#include "estimator_test_util.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "ldp/randomized_response.h"

namespace cne {
namespace {

using testing_util::MeanWithin;
using testing_util::RunTrials;

TEST(MultiRSSTest, NameAndProperties) {
  MultiRSSEstimator ss;
  EXPECT_EQ(ss.Name(), "MultiR-SS");
  EXPECT_TRUE(ss.IsUnbiased());
}

TEST(MultiRSSTest, TwoRoundsAndBudgetSplit) {
  const BipartiteGraph g = PlantedCommonNeighbors(3, 5, 2, 40);
  MultiRSSEstimator ss;
  Rng rng(1);
  const EstimateResult r = ss.Estimate(g, {Layer::kLower, 0, 1}, 2.0, rng);
  EXPECT_EQ(r.rounds, 2);
  EXPECT_DOUBLE_EQ(r.epsilon1, 1.0);
  EXPECT_DOUBLE_EQ(r.epsilon2, 1.0);
  EXPECT_DOUBLE_EQ(r.epsilon1 + r.epsilon2, 2.0);
  EXPECT_GT(r.downloaded_bytes, 0.0);  // u downloads w's noisy edges
}

TEST(SingleSourceEstimateTest, ExactWhenNoisySetIsTruth) {
  // If the "noisy" set equals w's true neighborhood and p -> 0, the
  // estimator recovers C2 exactly.
  GraphBuilder b(6, 2);
  // u (lower 0): neighbors {0,1,2}; w (lower 1): neighbors {1,2,3}.
  b.AddEdge(0, 0).AddEdge(1, 0).AddEdge(2, 0);
  b.AddEdge(1, 1).AddEdge(2, 1).AddEdge(3, 1);
  const BipartiteGraph g = b.Build();
  const NoisyNeighborSet fake({1, 2, 3}, 6, /*flip_probability=*/1e-12);
  const double f =
      SingleSourceEstimate(g, {Layer::kLower, 0}, fake);
  EXPECT_NEAR(f, 2.0, 1e-6);
}

TEST(SingleSourceEstimateTest, S1S2Decomposition) {
  GraphBuilder b(10, 2);
  for (VertexId v = 0; v < 5; ++v) b.AddEdge(v, 0);  // deg(u) = 5
  b.AddEdge(0, 1);
  const BipartiteGraph g = b.Build();
  const double p = 0.25;
  // Noisy set of w contains 2 of u's neighbors (0, 3) and 1 outsider (9).
  const NoisyNeighborSet noisy({0, 3, 9}, 10, p);
  const double q = 1 - 2 * p;
  const double expected = 2 * (1 - p) / q - 3 * p / q;
  EXPECT_NEAR(SingleSourceEstimate(g, {Layer::kLower, 0}, noisy), expected,
              1e-12);
}

TEST(MultiRSSTest, UnbiasedOnPlantedGraph) {
  const BipartiteGraph g = PlantedCommonNeighbors(3, 5, 2, 40);
  MultiRSSEstimator ss;
  const RunningStats stats =
      RunTrials(ss, g, {Layer::kLower, 0, 1}, 2.0, 30000, 2);
  EXPECT_TRUE(MeanWithin(stats, 3.0))
      << "mean " << stats.Mean() << " se " << stats.StdError();
}

TEST(MultiRSSTest, UnbiasedAtLowBudget) {
  const BipartiteGraph g = PlantedCommonNeighbors(4, 2, 2, 30);
  MultiRSSEstimator ss;
  const RunningStats stats =
      RunTrials(ss, g, {Layer::kLower, 0, 1}, 0.5, 40000, 3);
  EXPECT_TRUE(MeanWithin(stats, 4.0));
}

TEST(MultiRSSTest, VarianceMatchesTheorem6) {
  const BipartiteGraph g = PlantedCommonNeighbors(3, 5, 2, 40);
  const double du = 8;  // deg of lower vertex 0
  MultiRSSEstimator ss;
  const double epsilon = 2.0;
  const RunningStats stats =
      RunTrials(ss, g, {Layer::kLower, 0, 1}, epsilon, 40000, 5);
  const double theory = SingleSourceExpectedL2(du, 1.0, 1.0);
  EXPECT_NEAR(stats.Variance(), theory, theory * 0.1);
}

TEST(MultiRSSTest, LossIndependentOfCandidatePoolSize) {
  // Unlike OneR, adding isolated opposite-layer vertices must not change
  // the variance (Theorem 6 depends only on deg(u) and the split).
  MultiRSSEstimator ss;
  const BipartiteGraph small = PlantedCommonNeighbors(3, 5, 2, 20);
  const BipartiteGraph large = PlantedCommonNeighbors(3, 5, 2, 2000);
  const RunningStats s1 =
      RunTrials(ss, small, {Layer::kLower, 0, 1}, 2.0, 20000, 7);
  const RunningStats s2 =
      RunTrials(ss, large, {Layer::kLower, 0, 1}, 2.0, 20000, 8);
  EXPECT_NEAR(s1.Variance(), s2.Variance(), s1.Variance() * 0.15);
}

TEST(MultiRSSTest, AsymmetricInQueryOrder) {
  // f̃_u uses deg(u); swapping the pair changes the variance when degrees
  // are imbalanced.
  const BipartiteGraph g = PlantedCommonNeighbors(2, 100, 0, 30);
  MultiRSSEstimator ss;
  // deg(u0)=102, deg(u1)=2.
  const RunningStats big_first =
      RunTrials(ss, g, {Layer::kLower, 0, 1}, 2.0, 15000, 9);
  const RunningStats small_first =
      RunTrials(ss, g, {Layer::kLower, 1, 0}, 2.0, 15000, 10);
  EXPECT_GT(big_first.Variance(), 3 * small_first.Variance());
}

TEST(MultiRSSTest, CustomBudgetFraction) {
  const BipartiteGraph g = PlantedCommonNeighbors(3, 5, 2, 40);
  MultiRSSEstimator ss(0.25);
  Rng rng(11);
  const EstimateResult r = ss.Estimate(g, {Layer::kLower, 0, 1}, 2.0, rng);
  EXPECT_DOUBLE_EQ(r.epsilon1, 0.5);
  EXPECT_DOUBLE_EQ(r.epsilon2, 1.5);
}

TEST(MultiRSSDeathTest, RejectsDegenerateFraction) {
  EXPECT_DEATH(MultiRSSEstimator(0.0), "fraction");
  EXPECT_DEATH(MultiRSSEstimator(1.0), "fraction");
}

TEST(MultiRSSTest, CommunicationScalesWithOppositeLayer) {
  MultiRSSEstimator ss;
  const BipartiteGraph small = PlantedCommonNeighbors(2, 2, 2, 50);
  const BipartiteGraph large = PlantedCommonNeighbors(2, 2, 2, 5000);
  Rng rng(13);
  const double small_bytes =
      ss.Estimate(small, {Layer::kLower, 0, 1}, 2.0, rng).TotalBytes();
  const double large_bytes =
      ss.Estimate(large, {Layer::kLower, 0, 1}, 2.0, rng).TotalBytes();
  EXPECT_GT(large_bytes, 10 * small_bytes);
}

}  // namespace
}  // namespace cne
