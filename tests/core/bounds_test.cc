#include "core/bounds.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/oner.h"
#include "core/theory.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace cne {
namespace {

TEST(ChebyshevMultipleTest, KnownValues) {
  EXPECT_DOUBLE_EQ(ChebyshevMultiple(1.0), 1.0);
  EXPECT_DOUBLE_EQ(ChebyshevMultiple(0.25), 2.0);
  EXPECT_DOUBLE_EQ(ChebyshevMultiple(0.01), 10.0);
}

TEST(ChebyshevIntervalTest, GeometryAndContainment) {
  const ConfidenceInterval ci = ChebyshevInterval(10.0, 4.0, 0.75);
  // k = 1/sqrt(0.25) = 2, sigma = 2 -> radius 4.
  EXPECT_DOUBLE_EQ(ci.lower, 6.0);
  EXPECT_DOUBLE_EQ(ci.upper, 14.0);
  EXPECT_DOUBLE_EQ(ci.Width(), 8.0);
  EXPECT_TRUE(ci.Contains(10.0));
  EXPECT_TRUE(ci.Contains(6.0));
  EXPECT_FALSE(ci.Contains(14.0001));
}

TEST(ChebyshevIntervalTest, ZeroVarianceCollapses) {
  const ConfidenceInterval ci = ChebyshevInterval(5.0, 0.0, 0.9);
  EXPECT_DOUBLE_EQ(ci.Width(), 0.0);
  EXPECT_TRUE(ci.Contains(5.0));
}

TEST(ChebyshevIntervalTest, EmpiricalCoverageOnOneR) {
  // The interval built from the Theorem-4 variance must cover the true
  // count at least `confidence` of the time (Chebyshev is conservative,
  // so usually far more often).
  const double c2 = 3, du = 8, dw = 5, n1 = 50, eps = 1.0;
  const BipartiteGraph g = PlantedCommonNeighbors(3, 5, 2, 40);
  const double variance = OneRExpectedL2(n1, du, dw, eps);
  OneREstimator oner;
  Rng rng(7);
  const double confidence = 0.75;
  int covered = 0;
  const int trials = 5000;
  for (int t = 0; t < trials; ++t) {
    const double f =
        oner.Estimate(g, {Layer::kLower, 0, 1}, eps, rng).estimate;
    covered += ChebyshevInterval(f, variance, confidence).Contains(c2);
  }
  EXPECT_GT(static_cast<double>(covered) / trials, confidence);
}

TEST(LaplaceIntervalTest, ExactTailInversion) {
  // b = 2, confidence 1 - e^{-1}: radius must be exactly 2.
  const double confidence = 1.0 - std::exp(-1.0);
  const ConfidenceInterval ci = LaplaceInterval(0.0, 2.0, confidence);
  EXPECT_NEAR(ci.upper, 2.0, 1e-12);
  EXPECT_NEAR(ci.lower, -2.0, 1e-12);
}

TEST(LaplaceIntervalTest, TighterThanChebyshevAtHighConfidence) {
  const double scale = 1.0;
  const double variance = 2.0 * scale * scale;
  const double confidence = 0.95;
  const ConfidenceInterval laplace =
      LaplaceInterval(0.0, scale, confidence);
  const ConfidenceInterval chebyshev =
      ChebyshevInterval(0.0, variance, confidence);
  EXPECT_LT(laplace.Width(), chebyshev.Width());
}

TEST(LaplaceIntervalTest, EmpiricalCoverageIsExact) {
  Rng rng(9);
  const double scale = 1.5;
  const double confidence = 0.9;
  int covered = 0;
  const int trials = 100000;
  for (int t = 0; t < trials; ++t) {
    const double noisy = 7.0 + rng.Laplace(scale);
    covered += LaplaceInterval(noisy, scale, confidence).Contains(7.0);
  }
  // Exact coverage (within Monte-Carlo noise), not conservative.
  EXPECT_NEAR(static_cast<double>(covered) / trials, confidence, 0.005);
}

TEST(BoundsDeathTest, RejectsBadParameters) {
  EXPECT_DEATH(ChebyshevInterval(0, 1, 0.0), "confidence");
  EXPECT_DEATH(ChebyshevInterval(0, 1, 1.0), "confidence");
  EXPECT_DEATH(ChebyshevInterval(0, -1, 0.5), "variance");
  EXPECT_DEATH(LaplaceInterval(0, 0.0, 0.5), "scale");
  EXPECT_DEATH(ChebyshevMultiple(0.0), "delta");
}

}  // namespace
}  // namespace cne
