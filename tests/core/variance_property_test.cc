// Property suite: the Monte-Carlo variance of each unbiased estimator must
// match the closed-form L2 expressions of Theorems 4, 6, 8 across privacy
// budgets and graph shapes, and the empirical Table-3 hierarchy
// (MultiR-DS <= MultiR-SS << OneR) must hold.

#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "core/multir_ds.h"
#include "core/multir_ss.h"
#include "core/oner.h"
#include "core/theory.h"
#include "estimator_test_util.h"
#include "graph/generators.h"

namespace cne {
namespace {

using testing_util::RunTrials;

struct VarianceCase {
  std::string name;
  VertexId common;
  VertexId only_u;
  VertexId only_w;
  VertexId isolated;

  double N1() const {
    return static_cast<double>(common) + only_u + only_w + isolated;
  }
  double DegU() const { return static_cast<double>(common) + only_u; }
  double DegW() const { return static_cast<double>(common) + only_w; }
};

const VarianceCase kCases[] = {
    {"sparse", 2, 4, 4, 90},
    {"moderate", 5, 15, 10, 70},
    {"hub", 1, 50, 2, 47},
};

class VariancePropertyTest
    : public ::testing::TestWithParam<std::tuple<double, VarianceCase>> {};

TEST_P(VariancePropertyTest, OneRMatchesTheorem4) {
  const auto& [epsilon, c] = GetParam();
  const BipartiteGraph g =
      PlantedCommonNeighbors(c.common, c.only_u, c.only_w, c.isolated);
  OneREstimator oner;
  const RunningStats stats = RunTrials(
      oner, g, {Layer::kLower, 0, 1}, epsilon, 30000,
      static_cast<uint64_t>(epsilon * 100) + c.common);
  const double theory = OneRExpectedL2(c.N1(), c.DegU(), c.DegW(), epsilon);
  EXPECT_NEAR(stats.Variance(), theory, theory * 0.12)
      << c.name << " eps=" << epsilon;
}

TEST_P(VariancePropertyTest, MultiRSSMatchesTheorem6) {
  const auto& [epsilon, c] = GetParam();
  const BipartiteGraph g =
      PlantedCommonNeighbors(c.common, c.only_u, c.only_w, c.isolated);
  MultiRSSEstimator ss;
  const RunningStats stats = RunTrials(
      ss, g, {Layer::kLower, 0, 1}, epsilon, 30000,
      static_cast<uint64_t>(epsilon * 100) + c.only_u);
  const double theory =
      SingleSourceExpectedL2(c.DegU(), epsilon / 2, epsilon / 2);
  EXPECT_NEAR(stats.Variance(), theory, theory * 0.12)
      << c.name << " eps=" << epsilon;
}

TEST_P(VariancePropertyTest, MultiRDSBasicMatchesTheorem8) {
  const auto& [epsilon, c] = GetParam();
  const BipartiteGraph g =
      PlantedCommonNeighbors(c.common, c.only_u, c.only_w, c.isolated);
  auto basic = MakeMultiRDSBasic(0.5);
  const RunningStats stats = RunTrials(
      *basic, g, {Layer::kLower, 0, 1}, epsilon, 30000,
      static_cast<uint64_t>(epsilon * 100) + c.only_w);
  const double theory = DoubleSourceExpectedL2(c.DegU(), c.DegW(), 0.5,
                                               epsilon / 2, epsilon / 2);
  EXPECT_NEAR(stats.Variance(), theory, theory * 0.12)
      << c.name << " eps=" << epsilon;
}

TEST(Table3HierarchyTest, MultiRoundBelowOneRoundOnLargeCandidatePools) {
  // The Table 3 hierarchy OneR >> MultiR-SS >= MultiR-DS* requires the
  // candidate pool n1 to dominate the query degrees (OneR's loss carries
  // the n1 factor, the multi-round losses do not). Real datasets have
  // n1 in the thousands-to-millions; 10k isolated candidates suffice for
  // a wide margin at every budget.
  const BipartiteGraph g = PlantedCommonNeighbors(5, 15, 5, 10000);
  OneREstimator oner;
  MultiRSSEstimator ss;
  auto star = MakeMultiRDSStar();
  const QueryPair q{Layer::kLower, 0, 1};
  for (double epsilon : {1.0, 2.0, 3.0}) {
    const RunningStats v_oner = RunTrials(oner, g, q, epsilon, 4000, 31);
    const RunningStats v_ss = RunTrials(ss, g, q, epsilon, 8000, 32);
    const RunningStats v_star = RunTrials(*star, g, q, epsilon, 8000, 33);
    EXPECT_LT(v_ss.Variance(), v_oner.Variance()) << "eps " << epsilon;
    EXPECT_LT(v_star.Variance(), v_ss.Variance() * 1.15) << "eps " << epsilon;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, VariancePropertyTest,
    ::testing::Combine(::testing::Values(1.0, 2.0, 3.0),
                       ::testing::ValuesIn(kCases)),
    [](const ::testing::TestParamInfo<std::tuple<double, VarianceCase>>&
           info) {
      const double eps = std::get<0>(info.param);
      const VarianceCase& c = std::get<1>(info.param);
      return c.name + "_eps" + std::to_string(static_cast<int>(eps * 10));
    });

}  // namespace
}  // namespace cne
