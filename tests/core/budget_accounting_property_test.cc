// Property suite: every protocol's reported budget diagnostics must
// reconstruct exactly the ε the caller granted, its round count must
// match its protocol definition, and its communication must scale the
// way the Table 3 formulas say — across estimators, budgets, and graph
// shapes.

#include <memory>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "core/central_dp.h"
#include "core/multir_ds.h"
#include "core/multir_ss.h"
#include "core/naive.h"
#include "core/oner.h"
#include "graph/generators.h"
#include "ldp/comm_model.h"

namespace cne {
namespace {

struct RosterEntry {
  const char* name;
  int rounds;
};

std::unique_ptr<CommonNeighborEstimator> MakeByName(
    const std::string& name) {
  if (name == "Naive") return std::make_unique<NaiveEstimator>();
  if (name == "OneR") return std::make_unique<OneREstimator>();
  if (name == "MultiR-SS") return std::make_unique<MultiRSSEstimator>();
  if (name == "MultiR-SS-Opt")
    return std::make_unique<MultiRSSOptEstimator>();
  if (name == "MultiR-DS") return MakeMultiRDS();
  if (name == "MultiR-DS-Basic") return MakeMultiRDSBasic();
  if (name == "MultiR-DS*") return MakeMultiRDSStar();
  return std::make_unique<CentralDpEstimator>();
}

using Param = std::tuple<std::string, double>;

class BudgetAccountingTest : public ::testing::TestWithParam<Param> {};

TEST_P(BudgetAccountingTest, DiagnosticsReconstructEpsilon) {
  const auto& [name, epsilon] = GetParam();
  const auto estimator = MakeByName(name);
  const BipartiteGraph g = PlantedCommonNeighbors(3, 5, 2, 40);
  Rng rng(11);
  for (int t = 0; t < 20; ++t) {
    const EstimateResult r =
        estimator->Estimate(g, {Layer::kLower, 0, 1}, epsilon, rng);
    EXPECT_NEAR(r.epsilon0 + r.epsilon1 + r.epsilon2, epsilon, 1e-9)
        << name;
    EXPECT_GE(r.epsilon0, 0.0);
    EXPECT_GE(r.epsilon1, 0.0);
    EXPECT_GE(r.epsilon2, 0.0);
  }
}

TEST_P(BudgetAccountingTest, RoundCountMatchesProtocol) {
  const auto& [name, epsilon] = GetParam();
  const auto estimator = MakeByName(name);
  const BipartiteGraph g = PlantedCommonNeighbors(3, 5, 2, 40);
  Rng rng(13);
  const EstimateResult r =
      estimator->Estimate(g, {Layer::kLower, 0, 1}, epsilon, rng);
  int expected_rounds = 0;
  if (name == "Naive" || name == "OneR") expected_rounds = 1;
  if (name == "MultiR-SS" || name == "MultiR-DS-Basic" ||
      name == "MultiR-DS*") {
    expected_rounds = 2;
  }
  if (name == "MultiR-DS" || name == "MultiR-SS-Opt") expected_rounds = 3;
  EXPECT_EQ(r.rounds, expected_rounds) << name;
}

TEST_P(BudgetAccountingTest, CommunicationShrinksWithEpsilon) {
  // All local protocols are dominated by the RR edge volume, which is
  // decreasing in the RR budget; compare ε to 4ε on a sparse graph.
  const auto& [name, epsilon] = GetParam();
  if (name == "CentralDP") return;  // no communication at all
  const auto estimator = MakeByName(name);
  const BipartiteGraph g = PlantedCommonNeighbors(2, 3, 3, 3000);
  Rng rng(17);
  double lo = 0, hi = 0;
  for (int t = 0; t < 10; ++t) {
    lo += estimator->Estimate(g, {Layer::kLower, 0, 1}, epsilon, rng)
              .TotalBytes();
    hi += estimator->Estimate(g, {Layer::kLower, 0, 1}, 4 * epsilon, rng)
              .TotalBytes();
  }
  EXPECT_GT(lo, hi) << name;
}

TEST_P(BudgetAccountingTest, CentralHasZeroBytesLocalHasSome) {
  const auto& [name, epsilon] = GetParam();
  const auto estimator = MakeByName(name);
  const BipartiteGraph g = PlantedCommonNeighbors(3, 5, 2, 200);
  Rng rng(19);
  const EstimateResult r =
      estimator->Estimate(g, {Layer::kLower, 0, 1}, epsilon, rng);
  if (estimator->IsLocal()) {
    EXPECT_GT(r.TotalBytes(), 0.0) << name;
  } else {
    EXPECT_DOUBLE_EQ(r.TotalBytes(), 0.0) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Roster, BudgetAccountingTest,
    ::testing::Combine(
        ::testing::Values("Naive", "OneR", "MultiR-SS", "MultiR-SS-Opt",
                          "MultiR-DS", "MultiR-DS-Basic", "MultiR-DS*",
                          "CentralDP"),
        ::testing::Values(0.5, 2.0)),
    [](const ::testing::TestParamInfo<Param>& info) {
      std::string label = std::get<0>(info.param) + "_eps" +
                          std::to_string(static_cast<int>(
                              std::get<1>(info.param) * 10));
      for (char& c : label) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return label;
    });

}  // namespace
}  // namespace cne
