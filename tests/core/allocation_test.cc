#include "core/allocation.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/theory.h"

namespace cne {
namespace {

TEST(OptimalAlphaTest, StationaryPointOfQuadratic) {
  // At the closed-form alpha the derivative of F w.r.t. alpha vanishes.
  const double du = 5, dw = 100, eps1 = 1.0, eps2 = 0.9;
  const double alpha = OptimalAlpha(du, dw, eps1, eps2);
  const double h = 1e-6;
  const double up = DoubleSourceExpectedL2(du, dw, alpha + h, eps1, eps2);
  const double down = DoubleSourceExpectedL2(du, dw, alpha - h, eps1, eps2);
  const double grad = (up - down) / (2 * h);
  EXPECT_NEAR(grad, 0.0, 1e-6);
}

TEST(OptimalAlphaTest, SymmetricDegreesGiveHalf) {
  EXPECT_NEAR(OptimalAlpha(10, 10, 1.0, 1.0), 0.5, 1e-12);
  EXPECT_NEAR(OptimalAlpha(1, 1, 0.4, 1.6), 0.5, 1e-12);
}

TEST(OptimalAlphaTest, FavorsLowDegreeVertex) {
  // f̃_u gets weight alpha; a huge deg_u pushes alpha toward 0.
  EXPECT_LT(OptimalAlpha(1000, 2, 1.0, 1.0), 0.1);
  EXPECT_GT(OptimalAlpha(2, 1000, 1.0, 1.0), 0.9);
}

TEST(OptimalAlphaTest, SwapSymmetry) {
  const double a = OptimalAlpha(7, 31, 0.8, 1.2);
  const double b = OptimalAlpha(31, 7, 0.8, 1.2);
  EXPECT_NEAR(a + b, 1.0, 1e-12);
}

TEST(OptimalAlphaTest, LaplaceDominanceDrivesAlphaToHalf) {
  // Tiny eps2 -> huge Laplace term B -> averaging wins regardless of the
  // degree imbalance.
  EXPECT_NEAR(OptimalAlpha(5, 500, 1.99, 0.01), 0.5, 0.05);
}

TEST(OptimizeDoubleSourceTest, SplitsSumToBudget) {
  const AllocationResult r = OptimizeDoubleSource(2.0, 5, 10);
  EXPECT_NEAR(r.epsilon1 + r.epsilon2, 2.0, 1e-9);
  EXPECT_GT(r.epsilon1, 0.0);
  EXPECT_GT(r.epsilon2, 0.0);
  EXPECT_GE(r.alpha, 0.0);
  EXPECT_LE(r.alpha, 1.0);
}

TEST(OptimizeDoubleSourceTest, BeatsFixedGridOfAllocations) {
  // Theorem 9-style check: the optimized loss is no worse than any grid
  // alternative, including the single-source corner cases alpha=0/1.
  for (auto [du, dw] : {std::pair{5.0, 10.0}, {5.0, 100.0}, {50.0, 50.0}}) {
    const AllocationResult best = OptimizeDoubleSource(2.0, du, dw);
    for (double eps1 = 0.1; eps1 < 2.0; eps1 += 0.1) {
      for (double alpha : {0.0, 0.25, 0.5, 0.75, 1.0}) {
        const double loss =
            DoubleSourceExpectedL2(du, dw, alpha, eps1, 2.0 - eps1);
        EXPECT_LE(best.predicted_loss, loss + 1e-6)
            << "du=" << du << " dw=" << dw << " eps1=" << eps1
            << " alpha=" << alpha;
      }
    }
  }
}

TEST(OptimizeDoubleSourceTest, PredictedLossMatchesFormula) {
  const AllocationResult r = OptimizeDoubleSource(2.0, 5, 100);
  const double recomputed =
      DoubleSourceExpectedL2(5, 100, r.alpha, r.epsilon1, r.epsilon2);
  EXPECT_NEAR(r.predicted_loss, recomputed, 1e-9);
}

TEST(OptimizeDoubleSourceTest, LargerDegreesShiftBudgetToRr)  {
  // Paper: with large degrees MultiR-DS devotes more budget to noisy graph
  // construction (ε1).
  const AllocationResult small = OptimizeDoubleSource(2.0, 3, 3);
  const AllocationResult large = OptimizeDoubleSource(2.0, 300, 300);
  EXPECT_GT(large.epsilon1, small.epsilon1);
}

TEST(OptimizeDoubleSourceTest, Figure5LeftPanel) {
  // du=5, dw=10, ε=2: the balanced average (alpha≈0.5) is near-optimal
  // (left panel of Fig. 5).
  const AllocationResult r = OptimizeDoubleSource(2.0, 5, 10);
  EXPECT_GT(r.alpha, 0.4);
  EXPECT_LT(r.alpha, 0.7);
}

TEST(OptimizeDoubleSourceTest, Figure5RightPanel) {
  // du=5, dw=100: f̃_u dominates (alpha near 1), matching the right panel
  // where the alpha=1 curve attains the global minimum.
  const AllocationResult r = OptimizeDoubleSource(2.0, 5, 100);
  EXPECT_GT(r.alpha, 0.8);
}

TEST(OptimizeSingleSourceTest, AlphaPinnedToOne) {
  const AllocationResult r = OptimizeSingleSource(2.0, 20);
  EXPECT_DOUBLE_EQ(r.alpha, 1.0);
  EXPECT_NEAR(r.epsilon1 + r.epsilon2, 2.0, 1e-9);
}

TEST(OptimizeSingleSourceTest, BeatsEvenSplitForLargeDegrees) {
  // Section 4.2: optimizing the SS split only pays off when deg(u) is
  // large; verify it never loses to the even split.
  for (double deg : {2.0, 20.0, 200.0, 2000.0}) {
    const AllocationResult r = OptimizeSingleSource(2.0, deg);
    const double even = SingleSourceExpectedL2(deg, 1.0, 1.0);
    EXPECT_LE(r.predicted_loss, even + 1e-9) << "deg " << deg;
  }
}

TEST(OptimizeDoubleSourceDeathTest, RejectsBadInputs) {
  EXPECT_DEATH(OptimizeDoubleSource(0.0, 5, 5), "budget");
  EXPECT_DEATH(OptimizeDoubleSource(2.0, 0.0, 5), "positive");
  EXPECT_DEATH(OptimizeDoubleSource(2.0, 5, -1.0), "positive");
}

}  // namespace
}  // namespace cne
