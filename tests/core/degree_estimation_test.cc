#include "core/degree_estimation.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "util/statistics.h"

namespace cne {
namespace {

TEST(EstimateDegreeTest, UnbiasedWithLaplaceVariance) {
  const BipartiteGraph g = PlantedCommonNeighbors(3, 5, 2, 40);
  Rng rng(1);
  const double eps0 = 0.5;
  RunningStats stats;
  for (int t = 0; t < 50000; ++t) {
    stats.Add(EstimateDegree(g, {Layer::kLower, 0}, eps0, rng));
  }
  EXPECT_NEAR(stats.Mean(), 8.0, 5 * stats.StdError());
  // Var = 2 / eps0^2 = 8.
  EXPECT_NEAR(stats.Variance(), 8.0, 0.4);
}

TEST(EstimateAverageDegreeTest, SmallLayerExactPath) {
  // 3 upper vertices with degrees 2, 1, 1 -> average 4/3.
  GraphBuilder b(3, 4);
  b.AddEdge(0, 0).AddEdge(0, 1).AddEdge(1, 2).AddEdge(2, 3);
  const BipartiteGraph g = b.Build();
  Rng rng(2);
  RunningStats stats;
  for (int t = 0; t < 20000; ++t) {
    stats.Add(EstimateAverageDegree(g, Layer::kUpper, 1.0, rng));
  }
  EXPECT_NEAR(stats.Mean(), 4.0 / 3.0, 5 * stats.StdError());
  // Variance of the mean of 3 Laplace(1) draws: 2/3... plus nothing else.
  EXPECT_NEAR(stats.Variance(), 2.0 / 3.0, 0.05);
}

TEST(EstimateAverageDegreeTest, LargeLayerCltPath) {
  Rng gen(3);
  const BipartiteGraph g = ErdosRenyiBipartite(10000, 100, 30000, gen);
  Rng rng(4);
  RunningStats stats;
  const double eps0 = 0.1;
  for (int t = 0; t < 5000; ++t) {
    stats.Add(EstimateAverageDegree(g, Layer::kUpper, eps0, rng));
  }
  EXPECT_NEAR(stats.Mean(), 3.0, 5 * stats.StdError());
  // Var = 2 / (eps0^2 n) = 200 / 10000 = 0.02.
  EXPECT_NEAR(stats.Variance(), 0.02, 0.004);
}

TEST(EstimateAverageDegreeTest, EmptyLayerIsZero) {
  const BipartiteGraph g;
  Rng rng(5);
  EXPECT_DOUBLE_EQ(EstimateAverageDegree(g, Layer::kUpper, 1.0, rng), 0.0);
}

TEST(CorrectDegreeEstimateTest, PassesThroughPositive) {
  EXPECT_DOUBLE_EQ(CorrectDegreeEstimate(5.5, 3.0), 5.5);
  EXPECT_DOUBLE_EQ(CorrectDegreeEstimate(0.1, 3.0), 0.1);
}

TEST(CorrectDegreeEstimateTest, ReplacesNonPositiveWithAverage) {
  EXPECT_DOUBLE_EQ(CorrectDegreeEstimate(-2.0, 3.0), 3.0);
  EXPECT_DOUBLE_EQ(CorrectDegreeEstimate(0.0, 3.0), 3.0);
}

TEST(CorrectDegreeEstimateTest, FloorsAtMinDegree) {
  // Average itself may be tiny or negative from noise.
  EXPECT_DOUBLE_EQ(CorrectDegreeEstimate(-2.0, 0.2), 1.0);
  EXPECT_DOUBLE_EQ(CorrectDegreeEstimate(-2.0, -5.0), 1.0);
  EXPECT_DOUBLE_EQ(CorrectDegreeEstimate(-2.0, 0.2, 0.1), 0.2);
}

}  // namespace
}  // namespace cne
