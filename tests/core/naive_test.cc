#include "core/naive.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/theory.h"
#include "estimator_test_util.h"
#include "graph/generators.h"

namespace cne {
namespace {

using testing_util::MeanWithin;
using testing_util::RunTrials;

TEST(NaiveTest, NameAndProperties) {
  NaiveEstimator naive;
  EXPECT_EQ(naive.Name(), "Naive");
  EXPECT_FALSE(naive.IsUnbiased());
  EXPECT_TRUE(naive.IsLocal());
}

TEST(NaiveTest, SingleRoundAndCommunication) {
  const BipartiteGraph g = PlantedCommonNeighbors(3, 5, 2, 40);
  NaiveEstimator naive;
  Rng rng(1);
  const EstimateResult r =
      naive.Estimate(g, {Layer::kLower, 0, 1}, 2.0, rng);
  EXPECT_EQ(r.rounds, 1);
  EXPECT_GT(r.uploaded_bytes, 0.0);
  EXPECT_DOUBLE_EQ(r.downloaded_bytes, 0.0);
}

TEST(NaiveTest, EstimateIsNonNegativeInteger) {
  const BipartiteGraph g = PlantedCommonNeighbors(3, 5, 2, 40);
  NaiveEstimator naive;
  Rng rng(2);
  for (int t = 0; t < 50; ++t) {
    const double e =
        naive.Estimate(g, {Layer::kLower, 0, 1}, 1.0, rng).estimate;
    EXPECT_GE(e, 0.0);
    EXPECT_DOUBLE_EQ(e, std::floor(e));
  }
}

TEST(NaiveTest, MeanMatchesTheoreticalExpectation) {
  // Theory: E = c2 (1-p)^2 + exclusive p(1-p) + neither p^2.
  const double c2 = 3, only_u = 5, only_w = 2, isolated = 40;
  const BipartiteGraph g = PlantedCommonNeighbors(3, 5, 2, 40);
  const double n1 = c2 + only_u + only_w + isolated;
  const double epsilon = 1.0;
  NaiveEstimator naive;
  const RunningStats stats =
      RunTrials(naive, g, {Layer::kLower, 0, 1}, epsilon, 20000, 3);
  const double expected =
      NaiveExpectedValue(n1, c2 + only_u, c2 + only_w, c2, epsilon);
  EXPECT_TRUE(MeanWithin(stats, expected))
      << "mean " << stats.Mean() << " expected " << expected;
}

TEST(NaiveTest, OvercountsOnSparseGraphs) {
  // The headline failure: on a sparse graph the noisy graph is much denser
  // and the naive count blows past the true value.
  const BipartiteGraph g = PlantedCommonNeighbors(2, 3, 3, 500);
  NaiveEstimator naive;
  const RunningStats stats =
      RunTrials(naive, g, {Layer::kLower, 0, 1}, 1.0, 4000, 5);
  EXPECT_GT(stats.Mean(), 10.0);  // true count is 2
}

TEST(NaiveTest, EmpiricalL2MatchesTheory) {
  const double c2 = 3, du = 8, dw = 5, n1 = 50;
  const BipartiteGraph g = PlantedCommonNeighbors(3, 5, 2, 40);
  const double epsilon = 2.0;
  NaiveEstimator naive;
  Rng rng(7);
  RunningStats sq_err;
  for (int t = 0; t < 20000; ++t) {
    const double e =
        naive.Estimate(g, {Layer::kLower, 0, 1}, epsilon, rng).estimate;
    sq_err.Add((e - c2) * (e - c2));
  }
  const double theory = NaiveExpectedL2(n1, du, dw, c2, epsilon);
  EXPECT_NEAR(sq_err.Mean(), theory, 5 * sq_err.StdError());
}

TEST(NaiveTest, HigherBudgetReducesError) {
  const BipartiteGraph g = PlantedCommonNeighbors(3, 5, 2, 200);
  NaiveEstimator naive;
  const QueryPair q{Layer::kLower, 0, 1};
  RunningStats lo_err, hi_err;
  Rng rng(9);
  for (int t = 0; t < 3000; ++t) {
    const double lo = naive.Estimate(g, q, 1.0, rng).estimate;
    const double hi = naive.Estimate(g, q, 3.0, rng).estimate;
    lo_err.Add(std::abs(lo - 3.0));
    hi_err.Add(std::abs(hi - 3.0));
  }
  EXPECT_LT(hi_err.Mean(), lo_err.Mean());
}

TEST(NaiveTest, WorksOnUpperLayerQueries) {
  // Two upper vertices sharing lower neighbors.
  const BipartiteGraph g = CompleteBipartite(3, 10);
  NaiveEstimator naive;
  Rng rng(11);
  const EstimateResult r =
      naive.Estimate(g, {Layer::kUpper, 0, 1}, 2.0, rng);
  EXPECT_GE(r.estimate, 0.0);
  EXPECT_LE(r.estimate, 10.0);
}

}  // namespace
}  // namespace cne
