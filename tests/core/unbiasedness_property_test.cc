// Property suite: every estimator that claims IsUnbiased() must have
// Monte-Carlo mean equal to C2(u, w) — across privacy budgets, graph
// shapes, and degree configurations.

#include <cmath>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "core/central_dp.h"
#include "core/multir_ds.h"
#include "core/multir_ss.h"
#include "core/oner.h"
#include "estimator_test_util.h"
#include "graph/generators.h"

namespace cne {
namespace {

using testing_util::RunTrials;

// A graph shape with a known query pair and C2.
struct Shape {
  std::string name;
  VertexId common;
  VertexId only_u;
  VertexId only_w;
  VertexId isolated;
};

std::unique_ptr<CommonNeighborEstimator> MakeByName(const std::string& name) {
  if (name == "OneR") return std::make_unique<OneREstimator>();
  if (name == "MultiR-SS") return std::make_unique<MultiRSSEstimator>();
  if (name == "MultiR-DS") return MakeMultiRDS();
  if (name == "MultiR-DS-Basic") return MakeMultiRDSBasic();
  if (name == "MultiR-DS*") return MakeMultiRDSStar();
  if (name == "CentralDP") return std::make_unique<CentralDpEstimator>();
  ADD_FAILURE() << "unknown estimator " << name;
  return nullptr;
}

using Param = std::tuple<std::string, double, Shape>;

class UnbiasednessTest : public ::testing::TestWithParam<Param> {};

TEST_P(UnbiasednessTest, MeanEqualsTrueCount) {
  const auto& [name, epsilon, shape] = GetParam();
  const auto estimator = MakeByName(name);
  ASSERT_NE(estimator, nullptr);
  ASSERT_TRUE(estimator->IsUnbiased());
  const BipartiteGraph g = PlantedCommonNeighbors(
      shape.common, shape.only_u, shape.only_w, shape.isolated);
  const double truth = shape.common;
  // Seed derived from the parameters for reproducibility.
  const uint64_t seed = std::hash<std::string>{}(name) ^
                        static_cast<uint64_t>(epsilon * 1000) ^
                        (shape.common * 131);
  const RunningStats stats = RunTrials(*estimator, g, {Layer::kLower, 0, 1},
                                       epsilon, 6000, seed);
  // 4.5-sigma band plus a small absolute tolerance for rounding.
  EXPECT_NEAR(stats.Mean(), truth, 4.5 * stats.StdError() + 0.02)
      << name << " eps=" << epsilon << " shape=" << shape.name;
}

const Shape kShapes[] = {
    {"balanced", 3, 5, 5, 40},
    {"zero-common", 0, 6, 6, 50},
    {"imbalanced", 2, 60, 1, 30},
    {"dense-common", 20, 2, 2, 10},
};

INSTANTIATE_TEST_SUITE_P(
    AllUnbiasedEstimators, UnbiasednessTest,
    ::testing::Combine(
        ::testing::Values("OneR", "MultiR-SS", "MultiR-DS", "MultiR-DS-Basic",
                          "MultiR-DS*", "CentralDP"),
        ::testing::Values(0.5, 1.0, 2.0, 3.0),
        ::testing::ValuesIn(kShapes)),
    [](const ::testing::TestParamInfo<Param>& info) {
      const std::string& name = std::get<0>(info.param);
      const double epsilon = std::get<1>(info.param);
      const Shape& shape = std::get<2>(info.param);
      std::string label = name + "_eps" +
                          std::to_string(static_cast<int>(epsilon * 10)) +
                          "_" + shape.name;
      for (char& c : label) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return label;
    });

}  // namespace
}  // namespace cne
