#include <gtest/gtest.h>

#include "core/multir_ss.h"
#include "core/theory.h"
#include "estimator_test_util.h"
#include "graph/generators.h"

namespace cne {
namespace {

using testing_util::MeanWithin;
using testing_util::RunTrials;

TEST(MultiRSSOptTest, NameAndProperties) {
  MultiRSSOptEstimator opt;
  EXPECT_EQ(opt.Name(), "MultiR-SS-Opt");
  EXPECT_TRUE(opt.IsUnbiased());
}

TEST(MultiRSSOptTest, PublicDegreeVariantSkipsDegreeRound) {
  const BipartiteGraph g = PlantedCommonNeighbors(3, 5, 2, 40);
  MultiRSSOptEstimator opt(0.05, /*public_degrees=*/true);
  Rng rng(1);
  const EstimateResult r = opt.Estimate(g, {Layer::kLower, 0, 1}, 2.0, rng);
  EXPECT_EQ(r.rounds, 2);
  EXPECT_DOUBLE_EQ(r.epsilon0, 0.0);
  EXPECT_NEAR(r.epsilon1 + r.epsilon2, 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(r.noisy_degree_u, 8.0);
  EXPECT_DOUBLE_EQ(r.alpha, 1.0);
}

TEST(MultiRSSOptTest, PrivateDegreeVariantChargesEpsilon0) {
  const BipartiteGraph g = PlantedCommonNeighbors(3, 5, 2, 40);
  MultiRSSOptEstimator opt;
  Rng rng(2);
  const EstimateResult r = opt.Estimate(g, {Layer::kLower, 0, 1}, 2.0, rng);
  EXPECT_EQ(r.rounds, 3);
  EXPECT_DOUBLE_EQ(r.epsilon0, 0.1);
  EXPECT_NEAR(r.epsilon0 + r.epsilon1 + r.epsilon2, 2.0, 1e-12);
}

TEST(MultiRSSOptTest, Unbiased) {
  const BipartiteGraph g = PlantedCommonNeighbors(4, 6, 3, 50);
  MultiRSSOptEstimator opt;
  const RunningStats stats =
      RunTrials(opt, g, {Layer::kLower, 0, 1}, 2.0, 25000, 3);
  EXPECT_TRUE(MeanWithin(stats, 4.0))
      << "mean " << stats.Mean() << " se " << stats.StdError();
}

TEST(MultiRSSOptTest, BeatsEvenSplitOnLargeDegrees) {
  // Section 4.2: the optimization pays off when deg(u) is large.
  const BipartiteGraph g = PlantedCommonNeighbors(5, 400, 0, 100);
  MultiRSSOptEstimator opt(0.05, /*public_degrees=*/true);
  MultiRSSEstimator even;
  const QueryPair q{Layer::kLower, 0, 1};
  const RunningStats v_opt = RunTrials(opt, g, q, 2.0, 15000, 4);
  const RunningStats v_even = RunTrials(even, g, q, 2.0, 15000, 5);
  EXPECT_LT(v_opt.Variance(), v_even.Variance());
}

TEST(MultiRSSOptTest, NearEvenSplitOnSmallDegreesIsHarmless) {
  // With small deg(u), the optimum is close to even and the optimized
  // variant must not be substantially worse.
  const BipartiteGraph g = PlantedCommonNeighbors(2, 2, 2, 60);
  MultiRSSOptEstimator opt(0.05, /*public_degrees=*/true);
  MultiRSSEstimator even;
  const QueryPair q{Layer::kLower, 0, 1};
  const RunningStats v_opt = RunTrials(opt, g, q, 2.0, 15000, 6);
  const RunningStats v_even = RunTrials(even, g, q, 2.0, 15000, 7);
  EXPECT_LT(v_opt.Variance(), v_even.Variance() * 1.15);
}

TEST(MultiRSSOptTest, PredictedSplitMatchesTheorySingleSourceOptimum) {
  const BipartiteGraph g = PlantedCommonNeighbors(5, 95, 0, 50);
  MultiRSSOptEstimator opt(0.05, /*public_degrees=*/true);
  Rng rng(8);
  const EstimateResult r = opt.Estimate(g, {Layer::kLower, 0, 1}, 2.0, rng);
  // Re-derive: at the reported split, no nearby split should be better.
  const double here =
      SingleSourceExpectedL2(100.0, r.epsilon1, r.epsilon2);
  for (double d : {-0.05, 0.05}) {
    const double nearby = SingleSourceExpectedL2(
        100.0, r.epsilon1 + d, r.epsilon2 - d);
    EXPECT_GE(nearby, here - 1e-9);
  }
}

TEST(MultiRSSOptDeathTest, RejectsBadEpsilon0Fraction) {
  EXPECT_DEATH(MultiRSSOptEstimator(0.0), "fraction");
  EXPECT_DEATH(MultiRSSOptEstimator(1.0), "fraction");
}

}  // namespace
}  // namespace cne
