#include "core/oner.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/theory.h"
#include "estimator_test_util.h"
#include "graph/generators.h"
#include "ldp/randomized_response.h"

namespace cne {
namespace {

using testing_util::MeanWithin;
using testing_util::RunTrials;

TEST(OneRTest, NameAndProperties) {
  OneREstimator oner;
  EXPECT_EQ(oner.Name(), "OneR");
  EXPECT_TRUE(oner.IsUnbiased());
  EXPECT_TRUE(oner.IsLocal());
}

TEST(OneRClosedFormTest, MatchesDirectSummation) {
  // Direct sum of (A'[u,v]-p)(A'[v,w]-p)/(1-2p)^2 over all candidates vs
  // the N1/N2 expansion, for a hand-built configuration.
  const double p = 0.2;
  const double q = 1.0 - 2 * p;
  // 60 candidates: 4 in both noisy sets, 6 in exactly one, 50 in neither.
  const double direct = (4 * (1 - p) * (1 - p) + 6 * (1 - p) * (0 - p) +
                         50 * (0 - p) * (0 - p)) /
                        (q * q);
  const double closed = OneRClosedForm(4, 10, 60, p);
  EXPECT_NEAR(closed, direct, 1e-12);
}

TEST(OneRClosedFormTest, PerfectRecoveryAtZeroFlip) {
  // p = 0: noisy graph equals the true graph; the estimator returns N1.
  EXPECT_DOUBLE_EQ(OneRClosedForm(7, 20, 100, 0.0), 7.0);
}

TEST(OneRTest, UnbiasedOnPlantedGraph) {
  const BipartiteGraph g = PlantedCommonNeighbors(3, 5, 2, 40);
  OneREstimator oner;
  const RunningStats stats =
      RunTrials(oner, g, {Layer::kLower, 0, 1}, 1.0, 20000, 2);
  EXPECT_TRUE(MeanWithin(stats, 3.0))
      << "mean " << stats.Mean() << " se " << stats.StdError();
}

TEST(OneRTest, UnbiasedWithZeroCommonNeighbors) {
  const BipartiteGraph g = PlantedCommonNeighbors(0, 6, 6, 60);
  OneREstimator oner;
  const RunningStats stats =
      RunTrials(oner, g, {Layer::kLower, 0, 1}, 1.5, 20000, 3);
  EXPECT_TRUE(MeanWithin(stats, 0.0));
}

TEST(OneRTest, VarianceMatchesTheorem4) {
  const double du = 8, dw = 5, n1 = 50;
  const BipartiteGraph g = PlantedCommonNeighbors(3, 5, 2, 40);
  OneREstimator oner;
  const double epsilon = 1.0;
  const RunningStats stats =
      RunTrials(oner, g, {Layer::kLower, 0, 1}, epsilon, 40000, 5);
  const double theory = OneRExpectedL2(n1, du, dw, epsilon);
  // Variance of the sample variance: allow 10% tolerance at 40k samples.
  EXPECT_NEAR(stats.Variance(), theory, theory * 0.1);
}

TEST(OneRTest, LowerVarianceThanNaiveBias) {
  // OneR concentrates around the truth while Naive is shifted; compare
  // mean absolute errors on a sparse graph.
  const BipartiteGraph g = PlantedCommonNeighbors(2, 3, 3, 500);
  OneREstimator oner;
  Rng rng(7);
  RunningStats abs_err;
  for (int t = 0; t < 4000; ++t) {
    abs_err.Add(std::abs(
        oner.Estimate(g, {Layer::kLower, 0, 1}, 1.0, rng).estimate - 2.0));
  }
  // Naive's mean on this graph is > 10 (see naive_test); OneR's MAE must
  // be far below that shift.
  EXPECT_LT(abs_err.Mean(), 25.0);
}

TEST(OneRTest, SingleRoundCommunicationMatchesNaive) {
  const BipartiteGraph g = PlantedCommonNeighbors(3, 5, 2, 40);
  OneREstimator oner;
  Rng rng(11);
  const EstimateResult r = oner.Estimate(g, {Layer::kLower, 0, 1}, 2.0, rng);
  EXPECT_EQ(r.rounds, 1);
  EXPECT_GT(r.uploaded_bytes, 0.0);
  EXPECT_DOUBLE_EQ(r.downloaded_bytes, 0.0);
  EXPECT_DOUBLE_EQ(r.epsilon1, 2.0);
}

TEST(OneRTest, EstimateCanBeNegative) {
  // Unbiasedness around small counts requires negative mass.
  const BipartiteGraph g = PlantedCommonNeighbors(0, 2, 2, 300);
  OneREstimator oner;
  Rng rng(13);
  bool saw_negative = false;
  for (int t = 0; t < 2000 && !saw_negative; ++t) {
    saw_negative =
        oner.Estimate(g, {Layer::kLower, 0, 1}, 1.0, rng).estimate < 0;
  }
  EXPECT_TRUE(saw_negative);
}

TEST(OneRTest, UpperLayerQueriesUseLowerDomain) {
  const BipartiteGraph g = CompleteBipartite(4, 25);
  OneREstimator oner;
  const RunningStats stats =
      RunTrials(oner, g, {Layer::kUpper, 0, 1}, 2.0, 8000, 17);
  EXPECT_TRUE(MeanWithin(stats, 25.0));
}

}  // namespace
}  // namespace cne
