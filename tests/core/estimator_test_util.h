// Shared Monte-Carlo helpers for the estimator test suites.

#ifndef CNE_TESTS_CORE_ESTIMATOR_TEST_UTIL_H_
#define CNE_TESTS_CORE_ESTIMATOR_TEST_UTIL_H_

#include "core/estimator.h"
#include "graph/bipartite_graph.h"
#include "util/rng.h"
#include "util/statistics.h"

namespace cne {
namespace testing_util {

/// Runs `trials` independent protocol executions and accumulates the
/// estimates.
inline RunningStats RunTrials(const CommonNeighborEstimator& estimator,
                              const BipartiteGraph& graph,
                              const QueryPair& query, double epsilon,
                              int trials, uint64_t seed) {
  Rng rng(seed);
  RunningStats stats;
  for (int t = 0; t < trials; ++t) {
    stats.Add(estimator.Estimate(graph, query, epsilon, rng).estimate);
  }
  return stats;
}

/// Asserts-by-return that a Monte-Carlo mean is within `sigmas` standard
/// errors of `expected` (the caller EXPECTs on the result for a readable
/// failure message).
inline bool MeanWithin(const RunningStats& stats, double expected,
                       double sigmas = 4.0) {
  return std::abs(stats.Mean() - expected) <=
         sigmas * stats.StdError() + 1e-9;
}

}  // namespace testing_util
}  // namespace cne

#endif  // CNE_TESTS_CORE_ESTIMATOR_TEST_UTIL_H_
