// Robustness at budget extremes: tiny ε (near-maximal noise) must not
// break numerics or unbiasedness, and huge ε (near-zero noise) must
// recover the exact count.

#include <cmath>

#include <gtest/gtest.h>

#include "core/central_dp.h"
#include "core/multir_ds.h"
#include "core/multir_ss.h"
#include "core/naive.h"
#include "core/oner.h"
#include "estimator_test_util.h"
#include "graph/generators.h"

namespace cne {
namespace {

using testing_util::MeanWithin;
using testing_util::RunTrials;

class ExtremeBudgetTest : public ::testing::Test {
 protected:
  const BipartiteGraph graph_ = PlantedCommonNeighbors(3, 4, 2, 30);
  const QueryPair query_{Layer::kLower, 0, 1};
};

TEST_F(ExtremeBudgetTest, AllEstimatesFiniteAtTinyEpsilon) {
  const double epsilon = 0.05;
  Rng rng(1);
  for (const auto& estimator : MakeAllEstimators()) {
    for (int t = 0; t < 200; ++t) {
      const double e =
          estimator->Estimate(graph_, query_, epsilon, rng).estimate;
      EXPECT_TRUE(std::isfinite(e)) << estimator->Name();
    }
  }
}

TEST_F(ExtremeBudgetTest, OneRStillUnbiasedAtTinyEpsilon) {
  // p -> 1/2 makes the de-biasing denominator small; the estimator stays
  // unbiased, just wildly spread.
  OneREstimator oner;
  const RunningStats stats = RunTrials(oner, graph_, query_, 0.2, 60000, 2);
  EXPECT_TRUE(MeanWithin(stats, 3.0, 5.0))
      << "mean " << stats.Mean() << " se " << stats.StdError();
}

TEST_F(ExtremeBudgetTest, NaiveApproachesHalfDomainAtTinyEpsilon) {
  // At p ~ 1/2 every candidate is a noisy common neighbor w.p. ~1/4.
  NaiveEstimator naive;
  const RunningStats stats =
      RunTrials(naive, graph_, query_, 0.01, 5000, 3);
  const double n1 = 39.0;
  EXPECT_NEAR(stats.Mean(), n1 / 4.0, 1.0);
}

TEST_F(ExtremeBudgetTest, HugeEpsilonRecoversExactCount) {
  // ε = 25: flip probability ~1e-11 and Laplace scales ~1e-1 or less.
  Rng rng(4);
  for (const auto& estimator : MakeAllEstimators()) {
    RunningStats stats;
    for (int t = 0; t < 300; ++t) {
      stats.Add(
          estimator->Estimate(graph_, query_, 25.0, rng).estimate);
    }
    EXPECT_NEAR(stats.Mean(), 3.0, 0.2) << estimator->Name();
  }
}

TEST_F(ExtremeBudgetTest, MultiRDSAllocationStaysInsideBudgetAtExtremes) {
  auto ds = MakeMultiRDS();
  Rng rng(5);
  for (double epsilon : {0.05, 0.5, 8.0, 25.0}) {
    const EstimateResult r = ds->Estimate(graph_, query_, epsilon, rng);
    EXPECT_GT(r.epsilon1, 0.0) << "eps " << epsilon;
    EXPECT_GT(r.epsilon2, 0.0) << "eps " << epsilon;
    EXPECT_NEAR(r.epsilon0 + r.epsilon1 + r.epsilon2, epsilon, 1e-9);
    EXPECT_GE(r.alpha, 0.0);
    EXPECT_LE(r.alpha, 1.0);
  }
}

TEST_F(ExtremeBudgetTest, ErrorMonotoneOverWideBudgetRange) {
  MultiRSSEstimator ss;
  double previous = 1e300;
  for (double epsilon : {0.25, 1.0, 4.0, 16.0}) {
    const RunningStats stats =
        RunTrials(ss, graph_, query_, epsilon,
                  8000, static_cast<uint64_t>(epsilon * 1000));
    // The estimator is unbiased, so the spread is an error proxy.
    const double mae_proxy = stats.StdDev();
    EXPECT_LT(mae_proxy, previous) << "eps " << epsilon;
    previous = mae_proxy;
  }
}

}  // namespace
}  // namespace cne
