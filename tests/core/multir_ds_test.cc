#include "core/multir_ds.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/multir_ss.h"
#include "core/theory.h"
#include "estimator_test_util.h"
#include "graph/generators.h"

namespace cne {
namespace {

using testing_util::MeanWithin;
using testing_util::RunTrials;

TEST(MultiRDSTest, VariantNames) {
  EXPECT_EQ(MakeMultiRDS()->Name(), "MultiR-DS");
  EXPECT_EQ(MakeMultiRDSBasic()->Name(), "MultiR-DS-Basic");
  EXPECT_EQ(MakeMultiRDSStar()->Name(), "MultiR-DS*");
}

TEST(MultiRDSTest, BudgetAccounting) {
  const BipartiteGraph g = PlantedCommonNeighbors(3, 5, 2, 40);
  auto ds = MakeMultiRDS();
  Rng rng(1);
  const EstimateResult r = ds->Estimate(g, {Layer::kLower, 0, 1}, 2.0, rng);
  EXPECT_EQ(r.rounds, 3);
  EXPECT_DOUBLE_EQ(r.epsilon0, 0.1);  // 0.05 * 2.0
  EXPECT_NEAR(r.epsilon0 + r.epsilon1 + r.epsilon2, 2.0, 1e-12);
  EXPECT_GT(r.epsilon1, 0.0);
  EXPECT_GT(r.epsilon2, 0.0);
  EXPECT_GE(r.alpha, 0.0);
  EXPECT_LE(r.alpha, 1.0);
}

TEST(MultiRDSTest, StarVariantSkipsDegreeRound) {
  const BipartiteGraph g = PlantedCommonNeighbors(3, 5, 2, 40);
  auto star = MakeMultiRDSStar();
  Rng rng(2);
  const EstimateResult r =
      star->Estimate(g, {Layer::kLower, 0, 1}, 2.0, rng);
  EXPECT_EQ(r.rounds, 2);
  EXPECT_DOUBLE_EQ(r.epsilon0, 0.0);
  EXPECT_NEAR(r.epsilon1 + r.epsilon2, 2.0, 1e-12);
  // Star uses exact degrees.
  EXPECT_DOUBLE_EQ(r.noisy_degree_u, 8.0);
  EXPECT_DOUBLE_EQ(r.noisy_degree_w, 5.0);
}

TEST(MultiRDSTest, BasicVariantUsesFixedSplitAndHalfAlpha) {
  const BipartiteGraph g = PlantedCommonNeighbors(3, 5, 2, 40);
  auto basic = MakeMultiRDSBasic(0.3);
  Rng rng(3);
  const EstimateResult r =
      basic->Estimate(g, {Layer::kLower, 0, 1}, 2.0, rng);
  EXPECT_DOUBLE_EQ(r.epsilon0, 0.0);
  EXPECT_DOUBLE_EQ(r.epsilon1, 0.6);
  EXPECT_DOUBLE_EQ(r.epsilon2, 1.4);
  EXPECT_DOUBLE_EQ(r.alpha, 0.5);
}

TEST(MultiRDSTest, UnbiasedDefaultVariant) {
  const BipartiteGraph g = PlantedCommonNeighbors(3, 5, 2, 40);
  auto ds = MakeMultiRDS();
  const RunningStats stats =
      RunTrials(*ds, g, {Layer::kLower, 0, 1}, 2.0, 25000, 4);
  EXPECT_TRUE(MeanWithin(stats, 3.0))
      << "mean " << stats.Mean() << " se " << stats.StdError();
}

TEST(MultiRDSTest, UnbiasedStarVariant) {
  const BipartiteGraph g = PlantedCommonNeighbors(5, 3, 7, 60);
  auto star = MakeMultiRDSStar();
  const RunningStats stats =
      RunTrials(*star, g, {Layer::kLower, 0, 1}, 2.0, 25000, 5);
  EXPECT_TRUE(MeanWithin(stats, 5.0));
}

TEST(MultiRDSTest, UnbiasedBasicVariant) {
  const BipartiteGraph g = PlantedCommonNeighbors(4, 4, 4, 50);
  auto basic = MakeMultiRDSBasic();
  const RunningStats stats =
      RunTrials(*basic, g, {Layer::kLower, 0, 1}, 2.0, 25000, 6);
  EXPECT_TRUE(MeanWithin(stats, 4.0));
}

TEST(MultiRDSTest, BasicVarianceMatchesTheorem8) {
  const BipartiteGraph g = PlantedCommonNeighbors(3, 5, 2, 40);
  const double du = 8, dw = 5;
  auto basic = MakeMultiRDSBasic(0.5);
  const RunningStats stats =
      RunTrials(*basic, g, {Layer::kLower, 0, 1}, 2.0, 40000, 7);
  const double theory = DoubleSourceExpectedL2(du, dw, 0.5, 1.0, 1.0);
  EXPECT_NEAR(stats.Variance(), theory, theory * 0.1);
}

TEST(MultiRDSTest, StarBeatsSSOnImbalancedDegrees) {
  // deg(u0) = 202, deg(u1) = 2: the paper's motivating case. The
  // double-source optimizer should shift weight to the low-degree vertex
  // and beat single-source-from-u.
  const BipartiteGraph g = PlantedCommonNeighbors(2, 200, 0, 100);
  auto star = MakeMultiRDSStar();
  MultiRSSEstimator ss;
  const QueryPair q{Layer::kLower, 0, 1};
  const RunningStats star_stats = RunTrials(*star, g, q, 2.0, 15000, 8);
  const RunningStats ss_stats = RunTrials(ss, g, q, 2.0, 15000, 9);
  EXPECT_LT(star_stats.Variance(), ss_stats.Variance() * 0.5);
}

TEST(MultiRDSTest, AlphaFavorsLowDegreeVertex) {
  const BipartiteGraph g = PlantedCommonNeighbors(2, 200, 0, 100);
  auto star = MakeMultiRDSStar();
  Rng rng(10);
  // u has degree 202, w degree 2: f̃_w (weight 1 - alpha) should dominate.
  const EstimateResult r =
      star->Estimate(g, {Layer::kLower, 0, 1}, 2.0, rng);
  EXPECT_LT(r.alpha, 0.3);
  // Swapped: alpha should flip symmetrically.
  const EstimateResult r2 =
      star->Estimate(g, {Layer::kLower, 1, 0}, 2.0, rng);
  EXPECT_GT(r2.alpha, 0.7);
  EXPECT_NEAR(r.alpha + r2.alpha, 1.0, 1e-9);
}

TEST(MultiRDSTest, BalancedDegreesGiveHalfAlpha) {
  const BipartiteGraph g = PlantedCommonNeighbors(3, 4, 4, 50);
  auto star = MakeMultiRDSStar();
  Rng rng(11);
  const EstimateResult r =
      star->Estimate(g, {Layer::kLower, 0, 1}, 2.0, rng);
  EXPECT_NEAR(r.alpha, 0.5, 1e-9);
}

TEST(MultiRDSTest, DegreeRoundProducesPlausibleEstimates) {
  const BipartiteGraph g = PlantedCommonNeighbors(3, 5, 2, 40);
  auto ds = MakeMultiRDS();
  Rng rng(12);
  RunningStats du_stats;
  for (int t = 0; t < 2000; ++t) {
    const EstimateResult r =
        ds->Estimate(g, {Layer::kLower, 0, 1}, 2.0, rng);
    EXPECT_GT(r.noisy_degree_u, 0.0);  // corrected to positive
    du_stats.Add(r.noisy_degree_u);
  }
  // True degree 8. At ε0 = 0.1 the Laplace scale is b = 10, so
  // P(raw ≤ 0) = e^{-0.8}/2 ≈ 0.225 and those draws are replaced by the
  // (positive) layer-average estimate. The censoring inflates the mean:
  // E[raw·1{raw>0}] = 8·0.775 + (8+b)·0.225 ≈ 10.3, plus ≈ 0.225·7.5 from
  // the replacements ≈ 12.1 (confirmed by a 200k-trial isolation run).
  EXPECT_NEAR(du_stats.Mean(), 12.1, 2.0);
}

TEST(MultiRDSTest, CommunicationIncludesDegreeRound) {
  const BipartiteGraph g = PlantedCommonNeighbors(3, 5, 2, 40, 100);
  auto ds = MakeMultiRDS();
  auto star = MakeMultiRDSStar();
  Rng rng(13);
  const double ds_bytes =
      ds->Estimate(g, {Layer::kLower, 0, 1}, 2.0, rng).uploaded_bytes;
  const double star_bytes =
      star->Estimate(g, {Layer::kLower, 0, 1}, 2.0, rng).uploaded_bytes;
  // DS uploads one scalar per query-layer vertex (102 of them) on top.
  EXPECT_GT(ds_bytes, star_bytes + 8.0 * 100);
}

TEST(MultiRDSTest, OptimizerAllocatesMoreRrBudgetForLargeDegrees) {
  auto star = MakeMultiRDSStar();
  const BipartiteGraph small_deg = PlantedCommonNeighbors(2, 3, 3, 50);
  const BipartiteGraph large_deg = PlantedCommonNeighbors(2, 300, 300, 50);
  Rng rng(14);
  const double eps1_small =
      star->Estimate(small_deg, {Layer::kLower, 0, 1}, 2.0, rng).epsilon1;
  const double eps1_large =
      star->Estimate(large_deg, {Layer::kLower, 0, 1}, 2.0, rng).epsilon1;
  EXPECT_GT(eps1_large, eps1_small);
}

TEST(MultiRDSTest, HandlesIsolatedQueryVertices) {
  // Both query vertices isolated: protocol must not crash and stays
  // unbiased around 0.
  const BipartiteGraph g = PlantedCommonNeighbors(0, 0, 0, 30, 2);
  auto ds = MakeMultiRDS();
  const RunningStats stats =
      RunTrials(*ds, g, {Layer::kLower, 2, 3}, 2.0, 8000, 15);
  EXPECT_TRUE(MeanWithin(stats, 0.0, 5.0));
}

}  // namespace
}  // namespace cne
