// The pipeline contract: plans describe exactly the releases each
// protocol makes, the de-bias constants are the single definition of
// φ(i, j), and ExecuteProtocol is observationally identical to the
// estimator drivers built on top of it.

#include "core/protocol_pipeline.h"

#include <gtest/gtest.h>

#include "core/multir_ds.h"
#include "core/multir_ss.h"
#include "core/naive.h"
#include "core/oner.h"
#include "graph/generators.h"
#include "ldp/laplace_mechanism.h"
#include "ldp/randomized_response.h"

namespace cne {
namespace {

TEST(ProtocolPlanTest, NamesRoundTrip) {
  for (ProtocolKind kind :
       {ProtocolKind::kNaive, ProtocolKind::kOneR, ProtocolKind::kMultiRSS,
        ProtocolKind::kMultiRDS}) {
    const auto parsed = ParseProtocolKind(ToString(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(ParseProtocolKind("CentralDP").has_value());
}

TEST(ProtocolPlanTest, ReleaseStructurePerKind) {
  // Naive/OneR: two noisy views, no Laplace, one round, full ε on RR.
  for (ProtocolKind kind : {ProtocolKind::kNaive, ProtocolKind::kOneR}) {
    const ProtocolPlan plan = MakeProtocolPlan(kind, 2.0, 0.5);
    EXPECT_TRUE(plan.UsesNoisyViewU());
    EXPECT_TRUE(plan.UsesNoisyViewW());
    EXPECT_FALSE(plan.LaplaceFromU());
    EXPECT_FALSE(plan.LaplaceFromW());
    EXPECT_EQ(plan.NumLaplaceReleases(), 0);
    EXPECT_EQ(plan.NumRounds(), 1);
    EXPECT_DOUBLE_EQ(plan.epsilon1, 2.0);
    EXPECT_DOUBLE_EQ(plan.epsilon2, 0.0);
  }

  // MultiR-SS: only w releases a view; u releases one Laplace scalar.
  const ProtocolPlan ss = MakeProtocolPlan(ProtocolKind::kMultiRSS, 2.0, 0.25);
  EXPECT_FALSE(ss.UsesNoisyViewU());
  EXPECT_TRUE(ss.UsesNoisyViewW());
  EXPECT_TRUE(ss.LaplaceFromU());
  EXPECT_FALSE(ss.LaplaceFromW());
  EXPECT_EQ(ss.NumLaplaceReleases(), 1);
  EXPECT_EQ(ss.NumRounds(), 2);
  EXPECT_DOUBLE_EQ(ss.epsilon1, 0.5);
  EXPECT_DOUBLE_EQ(ss.epsilon2, 1.5);

  // MultiR-DS: both views, both Laplace scalars.
  const ProtocolPlan ds = MakeProtocolPlan(ProtocolKind::kMultiRDS, 2.0, 0.5);
  EXPECT_TRUE(ds.UsesNoisyViewU());
  EXPECT_TRUE(ds.LaplaceFromU());
  EXPECT_TRUE(ds.LaplaceFromW());
  EXPECT_EQ(ds.NumLaplaceReleases(), 2);
  EXPECT_EQ(ds.NumRounds(), 2);
}

TEST(DebiasConstantsTest, MatchesTheClosedFormDefinitions) {
  for (double epsilon1 : {0.5, 1.0, 2.0}) {
    const double p = FlipProbability(epsilon1);
    const DebiasConstants d = MakeDebiasConstantsForEpsilon(epsilon1);
    EXPECT_DOUBLE_EQ(d.flip_probability, p);
    EXPECT_DOUBLE_EQ(d.q, 1.0 - 2.0 * p);
    // The single-source coefficients — `stay` doubles as the Laplace
    // sensitivity of f_u.
    EXPECT_DOUBLE_EQ(d.stay, SingleSourceSensitivity(epsilon1));
    EXPECT_DOUBLE_EQ(d.flip, p / (1.0 - 2.0 * p));
  }
}

TEST(DebiasConstantsTest, OneRFromCountsEqualsClosedForm) {
  const DebiasConstants d = MakeDebiasConstants(0.2);
  for (uint64_t n1 : {0u, 3u, 7u}) {
    for (uint64_t extra : {0u, 5u}) {
      const uint64_t n2 = n1 + extra;
      EXPECT_DOUBLE_EQ(OneRFromCounts(d, n1, n2, 100),
                       OneRClosedForm(n1, n2, 100, 0.2));
    }
  }
  // p = 0 recovers the intersection exactly.
  const DebiasConstants exact = MakeDebiasConstants(0.0);
  EXPECT_DOUBLE_EQ(OneRFromCounts(exact, 7, 20, 100), 7.0);
}

TEST(DebiasConstantsTest, SingleSourceFromCountsMatchesDefinition) {
  const DebiasConstants d = MakeDebiasConstants(0.25);
  const double p = 0.25, q = 0.5;
  // s1 = 4 of degree 10: f = 4 (1-p)/q - 6 p/q.
  EXPECT_NEAR(SingleSourceFromCounts(d, 4, 10),
              4.0 * (1.0 - p) / q - 6.0 * p / q, 1e-12);
}

TEST(DebiasConstantsTest, DegreeFromViewSizeInvertsTheExpectation) {
  // Feeding the exact expected noisy size returns the true degree.
  const double epsilon = 1.0;
  const DebiasConstants d = MakeDebiasConstantsForEpsilon(epsilon);
  const double p = d.flip_probability;
  const uint64_t degree = 12;
  const VertexId domain = 200;
  const double expected_size =
      static_cast<double>(degree) * (1.0 - p) +
      static_cast<double>(domain - degree) * p;
  EXPECT_NEAR(DebiasedDegreeFromViewSize(
                  d, static_cast<uint64_t>(expected_size + 0.5), domain),
              static_cast<double>(degree), 1.0);
}

// --- The estimator drivers are thin: same rng stream in, same result out.

class PipelineEquivalenceTest : public ::testing::Test {
 protected:
  const BipartiteGraph graph_ = PlantedCommonNeighbors(3, 5, 2, 40, 4);
  const QueryPair query_{Layer::kLower, 0, 1};
};

TEST_F(PipelineEquivalenceTest, NaiveDriverMatchesExecuteProtocol) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Rng a(seed), b(seed);
    const EstimateResult driver =
        NaiveEstimator().Estimate(graph_, query_, 1.5, a);
    const ProtocolOutcome direct = ExecuteProtocol(
        graph_, query_, MakeProtocolPlan(ProtocolKind::kNaive, 1.5, 0.5), b);
    EXPECT_EQ(driver.estimate, direct.estimate);
    EXPECT_EQ(driver.rounds, direct.rounds);
    EXPECT_EQ(driver.uploaded_bytes, direct.uploaded_bytes);
    EXPECT_EQ(driver.downloaded_bytes, direct.downloaded_bytes);
  }
}

TEST_F(PipelineEquivalenceTest, OneRDriverMatchesExecuteProtocol) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Rng a(seed), b(seed);
    const EstimateResult driver =
        OneREstimator().Estimate(graph_, query_, 1.5, a);
    const ProtocolOutcome direct = ExecuteProtocol(
        graph_, query_, MakeProtocolPlan(ProtocolKind::kOneR, 1.5, 0.5), b);
    EXPECT_EQ(driver.estimate, direct.estimate);
    EXPECT_EQ(driver.rounds, direct.rounds);
  }
}

TEST_F(PipelineEquivalenceTest, MultiRSSDriverMatchesExecuteProtocol) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Rng a(seed), b(seed);
    const EstimateResult driver =
        MultiRSSEstimator(0.5).Estimate(graph_, query_, 2.0, a);
    const ProtocolOutcome direct = ExecuteProtocol(
        graph_, query_, MakeProtocolPlan(ProtocolKind::kMultiRSS, 2.0, 0.5),
        b);
    EXPECT_EQ(driver.estimate, direct.estimate);
    EXPECT_EQ(driver.rounds, direct.rounds);
    EXPECT_EQ(driver.uploaded_bytes, direct.uploaded_bytes);
    EXPECT_EQ(driver.downloaded_bytes, direct.downloaded_bytes);
  }
}

TEST_F(PipelineEquivalenceTest, MultiRDSBasicDriverMatchesExecuteProtocol) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Rng a(seed), b(seed);
    const EstimateResult driver =
        MakeMultiRDSBasic(0.5)->Estimate(graph_, query_, 2.0, a);
    const ProtocolOutcome direct = ExecuteProtocol(
        graph_, query_,
        MakeProtocolPlanSplit(ProtocolKind::kMultiRDS, 1.0, 1.0, 0.5), b);
    EXPECT_EQ(driver.estimate, direct.estimate);
    EXPECT_EQ(driver.rounds, direct.rounds);
  }
}

TEST_F(PipelineEquivalenceTest, SingleSourceEstimateUsesTheConstants) {
  // A fake noisy set equal to the truth with p = 0 recovers C2 exactly.
  const auto neighbors = graph_.Neighbors({Layer::kLower, 1});
  const NoisyNeighborSet fake = NoisyNeighborSet::FromSortedUnique(
      {neighbors.begin(), neighbors.end()}, graph_.NumUpper(), 0.0);
  EXPECT_DOUBLE_EQ(
      SingleSourceEstimate(graph_, {Layer::kLower, 0}, fake),
      static_cast<double>(graph_.CountCommonNeighbors(Layer::kLower, 0, 1)));
}

}  // namespace
}  // namespace cne
