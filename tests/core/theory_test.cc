#include "core/theory.h"

#include <cmath>

#include <gtest/gtest.h>

#include "ldp/randomized_response.h"

namespace cne {
namespace {

TEST(NaiveTheoryTest, ExpectedValueAtFullPrivacyLimit) {
  // As epsilon -> infinity, p -> 0 and the naive count is exact.
  EXPECT_NEAR(NaiveExpectedValue(1000, 20, 30, 7, 30.0), 7.0, 1e-6);
}

TEST(NaiveTheoryTest, OvercountGrowsWithGraphSize) {
  const double small = NaiveExpectedValue(100, 10, 10, 2, 1.0);
  const double large = NaiveExpectedValue(10000, 10, 10, 2, 1.0);
  EXPECT_GT(large, small);
  EXPECT_GT(large, 2.0);  // biased upward
}

TEST(NaiveTheoryTest, L2IncludesBiasSquared) {
  // At any finite epsilon on a sparse graph, the bias dominates: L2 must
  // be at least bias^2.
  const double n1 = 10000, du = 10, dw = 10, c2 = 2, eps = 1.0;
  const double bias = NaiveExpectedValue(n1, du, dw, c2, eps) - c2;
  EXPECT_GE(NaiveExpectedL2(n1, du, dw, c2, eps), bias * bias);
}

TEST(OneRTheoryTest, ScalesLinearlyInN1) {
  const double base = OneRExpectedL2(1000, 0, 0, 2.0);
  const double doubled = OneRExpectedL2(2000, 0, 0, 2.0);
  EXPECT_NEAR(doubled / base, 2.0, 1e-9);
}

TEST(OneRTheoryTest, DecreasesInEpsilon) {
  EXPECT_GT(OneRExpectedL2(1000, 10, 10, 1.0),
            OneRExpectedL2(1000, 10, 10, 2.0));
  EXPECT_GT(OneRExpectedL2(1000, 10, 10, 2.0),
            OneRExpectedL2(1000, 10, 10, 3.0));
}

TEST(OneRTheoryTest, MatchesManualFormula) {
  const double eps = 1.7, n1 = 500, du = 12, dw = 7;
  const double p = FlipProbability(eps);
  const double s = p * (1 - p);
  const double q = 1 - 2 * p;
  const double expected = s * s / (q * q * q * q) * n1 + s / (q * q) * (du + dw);
  EXPECT_NEAR(OneRExpectedL2(n1, du, dw, eps), expected, 1e-12);
}

TEST(SingleSourceTheoryTest, IndependentOfN1) {
  // The expression takes no n1 argument at all — structural guarantee —
  // but also verify it only depends on deg_u and the split.
  EXPECT_DOUBLE_EQ(SingleSourceExpectedL2(10, 1.0, 1.0),
                   SingleSourceExpectedL2(10, 1.0, 1.0));
}

TEST(SingleSourceTheoryTest, SplitsIntoRrAndLaplaceTerms) {
  const double eps1 = 1.0, eps2 = 1.0;
  const double with_deg = SingleSourceExpectedL2(10, eps1, eps2);
  const double zero_deg = SingleSourceExpectedL2(0, eps1, eps2);
  const double p = FlipProbability(eps1);
  const double q = 1 - 2 * p;
  // Degree contribution is p(1-p)/(1-2p)^2 per neighbor.
  EXPECT_NEAR(with_deg - zero_deg, 10 * p * (1 - p) / (q * q), 1e-12);
}

TEST(DoubleSourceTheoryTest, CornersEqualSingleSource) {
  const double du = 5, dw = 100, eps1 = 0.9, eps2 = 1.1;
  EXPECT_NEAR(DoubleSourceExpectedL2(du, dw, 1.0, eps1, eps2),
              SingleSourceExpectedL2(du, eps1, eps2), 1e-12);
  EXPECT_NEAR(DoubleSourceExpectedL2(du, dw, 0.0, eps1, eps2),
              SingleSourceExpectedL2(dw, eps1, eps2), 1e-12);
}

TEST(DoubleSourceTheoryTest, AveragingHalvesLaplaceTerm) {
  // With equal degrees, alpha=1/2 halves the Laplace variance relative to
  // a single source: F(1/2) = A d/2 + B/2 vs F(1) = A d + B.
  const double d = 20, eps1 = 1.0, eps2 = 1.0;
  const double half = DoubleSourceExpectedL2(d, d, 0.5, eps1, eps2);
  const double single = DoubleSourceExpectedL2(d, d, 1.0, eps1, eps2);
  EXPECT_NEAR(half, single / 2.0, 1e-12);
}

TEST(CentralTheoryTest, TwoOverEpsilonSquared) {
  EXPECT_DOUBLE_EQ(CentralDpExpectedL2(1.0), 2.0);
  EXPECT_DOUBLE_EQ(CentralDpExpectedL2(2.0), 0.5);
}

TEST(OrderTest, Table3Hierarchy) {
  // At realistic sizes: Naive >> OneR >> multi-round losses.
  const double n1 = 1e5, eps = 2.0;
  EXPECT_GT(NaiveL2Order(n1, eps), OneRL2Order(n1, eps));
  EXPECT_GT(OneRL2Order(n1, eps), SingleSourceExpectedL2(100, 1.0, 1.0));
}

TEST(OrderTest, NaiveQuadraticOneRLinear) {
  const double eps = 2.0;
  EXPECT_NEAR(NaiveL2Order(2000, eps) / NaiveL2Order(1000, eps), 4.0, 1e-9);
  EXPECT_NEAR(OneRL2Order(2000, eps) / OneRL2Order(1000, eps), 2.0, 1e-9);
}

}  // namespace
}  // namespace cne
