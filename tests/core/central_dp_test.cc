#include "core/central_dp.h"

#include <gtest/gtest.h>

#include "core/theory.h"
#include "estimator_test_util.h"
#include "graph/generators.h"

namespace cne {
namespace {

using testing_util::MeanWithin;
using testing_util::RunTrials;

TEST(CentralDpTest, NameAndProperties) {
  CentralDpEstimator central;
  EXPECT_EQ(central.Name(), "CentralDP");
  EXPECT_TRUE(central.IsUnbiased());
  EXPECT_FALSE(central.IsLocal());
}

TEST(CentralDpTest, NoCommunication) {
  const BipartiteGraph g = PlantedCommonNeighbors(3, 5, 2, 40);
  CentralDpEstimator central;
  Rng rng(1);
  const EstimateResult r =
      central.Estimate(g, {Layer::kLower, 0, 1}, 2.0, rng);
  EXPECT_EQ(r.rounds, 0);
  EXPECT_DOUBLE_EQ(r.TotalBytes(), 0.0);
}

TEST(CentralDpTest, Unbiased) {
  const BipartiteGraph g = PlantedCommonNeighbors(7, 5, 2, 40);
  CentralDpEstimator central;
  const RunningStats stats =
      RunTrials(central, g, {Layer::kLower, 0, 1}, 2.0, 50000, 2);
  EXPECT_TRUE(MeanWithin(stats, 7.0));
}

TEST(CentralDpTest, VarianceIsTwoOverEpsilonSquared) {
  const BipartiteGraph g = PlantedCommonNeighbors(3, 5, 2, 40);
  CentralDpEstimator central;
  for (double eps : {1.0, 2.0}) {
    const RunningStats stats =
        RunTrials(central, g, {Layer::kLower, 0, 1}, eps, 50000,
                  static_cast<uint64_t>(eps * 100));
    const double theory = CentralDpExpectedL2(eps);
    EXPECT_NEAR(stats.Variance(), theory, theory * 0.08) << "eps " << eps;
  }
}

TEST(CentralDpTest, ErrorIndependentOfGraphSize) {
  CentralDpEstimator central;
  const BipartiteGraph small = PlantedCommonNeighbors(2, 2, 2, 10);
  const BipartiteGraph large = PlantedCommonNeighbors(2, 2, 2, 5000);
  const RunningStats s1 =
      RunTrials(central, small, {Layer::kLower, 0, 1}, 2.0, 30000, 5);
  const RunningStats s2 =
      RunTrials(central, large, {Layer::kLower, 0, 1}, 2.0, 30000, 6);
  EXPECT_NEAR(s1.Variance(), s2.Variance(), s1.Variance() * 0.1);
}

}  // namespace
}  // namespace cne
