#include "ldp/randomized_response.h"

#include <array>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "util/statistics.h"

namespace cne {
namespace {

TEST(FlipProbabilityTest, KnownValues) {
  EXPECT_NEAR(FlipProbability(std::log(3.0)), 0.25, 1e-12);
  EXPECT_NEAR(FlipProbability(1.0), 1.0 / (1.0 + std::exp(1.0)), 1e-12);
  // Larger budget -> smaller flip probability, always below 1/2.
  EXPECT_LT(FlipProbability(3.0), FlipProbability(1.0));
  EXPECT_LT(FlipProbability(0.01), 0.5);
  EXPECT_GT(FlipProbability(0.01), 0.49);
}

TEST(NoisyNeighborSetTest, SortsAndDeduplicates) {
  NoisyNeighborSet set({5, 1, 3, 1}, 10, 0.2);
  EXPECT_EQ(set.Size(), 3u);
  EXPECT_TRUE(set.Contains(1));
  EXPECT_TRUE(set.Contains(3));
  EXPECT_TRUE(set.Contains(5));
  EXPECT_FALSE(set.Contains(2));
  EXPECT_EQ(set.DomainSize(), 10u);
}

TEST(NoisyNeighborSetTest, EmptySet) {
  NoisyNeighborSet set({}, 10, 0.2);
  EXPECT_EQ(set.Size(), 0u);
  EXPECT_FALSE(set.Contains(0));
}

class RrStatisticalTest : public ::testing::Test {
 protected:
  // u0 has neighbors {0..9} among 100 lower vertices.
  BipartiteGraph MakeGraph() {
    GraphBuilder b(1, 100);
    for (VertexId l = 0; l < 10; ++l) b.AddEdge(0, l);
    return b.Build();
  }
};

TEST_F(RrStatisticalTest, PerBitFlipRateMatchesP) {
  const BipartiteGraph g = MakeGraph();
  const double epsilon = 1.0;
  const double p = FlipProbability(epsilon);
  Rng rng(123);
  const int trials = 3000;
  int kept_ones = 0;     // true neighbor survives
  int flipped_zeros = 0; // non-neighbor appears
  for (int t = 0; t < trials; ++t) {
    const NoisyNeighborSet noisy =
        ApplyRandomizedResponse(g, {Layer::kUpper, 0}, epsilon, rng);
    for (VertexId l = 0; l < 10; ++l) kept_ones += noisy.Contains(l);
    for (VertexId l = 10; l < 100; ++l) flipped_zeros += noisy.Contains(l);
  }
  const double keep_rate = static_cast<double>(kept_ones) / (trials * 10.0);
  const double flip_rate =
      static_cast<double>(flipped_zeros) / (trials * 90.0);
  EXPECT_NEAR(keep_rate, 1.0 - p, 0.01);
  EXPECT_NEAR(flip_rate, p, 0.01);
}

TEST_F(RrStatisticalTest, SparseMatchesDenseDistribution) {
  // The sparse sampler must agree with explicit bit-by-bit RR in noisy
  // degree distribution and per-bit marginals.
  const BipartiteGraph g = MakeGraph();
  const double epsilon = 1.5;
  Rng rng_sparse(7), rng_dense(8);
  RunningStats sparse_sizes, dense_sizes;
  std::vector<int> sparse_hits(100, 0), dense_hits(100, 0);
  const int trials = 4000;
  for (int t = 0; t < trials; ++t) {
    const auto sparse =
        ApplyRandomizedResponse(g, {Layer::kUpper, 0}, epsilon, rng_sparse);
    const auto dense = ApplyRandomizedResponseDense(g, {Layer::kUpper, 0},
                                                    epsilon, rng_dense);
    sparse_sizes.Add(static_cast<double>(sparse.Size()));
    dense_sizes.Add(static_cast<double>(dense.Size()));
    for (VertexId l = 0; l < 100; ++l) {
      sparse_hits[l] += sparse.Contains(l);
      dense_hits[l] += dense.Contains(l);
    }
  }
  EXPECT_NEAR(sparse_sizes.Mean(), dense_sizes.Mean(),
              4 * (sparse_sizes.StdError() + dense_sizes.StdError()));
  // Marginals agree bit by bit within 5 sigma.
  for (VertexId l = 0; l < 100; ++l) {
    const double ps = static_cast<double>(sparse_hits[l]) / trials;
    const double pd = static_cast<double>(dense_hits[l]) / trials;
    const double se = std::sqrt(0.25 / trials);
    EXPECT_NEAR(ps, pd, 10 * se) << "bit " << l;
  }
}

TEST_F(RrStatisticalTest, ExpectedNoisyDegreeFormula) {
  const BipartiteGraph g = MakeGraph();
  const double epsilon = 2.0;
  Rng rng(11);
  RunningStats sizes;
  for (int t = 0; t < 5000; ++t) {
    sizes.Add(static_cast<double>(
        ApplyRandomizedResponse(g, {Layer::kUpper, 0}, epsilon, rng).Size()));
  }
  const double expected = ExpectedNoisyDegree(10, 100, epsilon);
  EXPECT_NEAR(sizes.Mean(), expected, 5 * sizes.StdError());
}

TEST(RrEdgeCasesTest, FullNeighborhood) {
  // Every lower vertex is a neighbor: no zero bits to flip in.
  const BipartiteGraph g = CompleteBipartite(1, 50);
  Rng rng(13);
  const auto noisy =
      ApplyRandomizedResponse(g, {Layer::kUpper, 0}, 2.0, rng);
  EXPECT_LE(noisy.Size(), 50u);
  // All members must lie in the domain.
  for (VertexId v : noisy.SortedMembers()) EXPECT_LT(v, 50u);
}

TEST(RrEdgeCasesTest, EmptyNeighborhood) {
  GraphBuilder b(2, 50);
  b.AddEdge(1, 0);  // u0 isolated
  const BipartiteGraph g = b.Build();
  Rng rng(17);
  RunningStats sizes;
  const double epsilon = 1.0;
  for (int t = 0; t < 2000; ++t) {
    sizes.Add(static_cast<double>(
        ApplyRandomizedResponse(g, {Layer::kUpper, 0}, epsilon, rng).Size()));
  }
  const double p = FlipProbability(epsilon);
  EXPECT_NEAR(sizes.Mean(), 50 * p, 5 * sizes.StdError());
}

TEST(RrEdgeCasesTest, LowerLayerVertexPerturbsUpperDomain) {
  GraphBuilder b(30, 3);
  b.AddEdge(0, 1).AddEdge(5, 1).AddEdge(29, 1);
  const BipartiteGraph g = b.Build();
  Rng rng(19);
  const auto noisy =
      ApplyRandomizedResponse(g, {Layer::kLower, 1}, 2.0, rng);
  EXPECT_EQ(noisy.DomainSize(), 30u);
  for (VertexId v : noisy.SortedMembers()) EXPECT_LT(v, 30u);
}

TEST(RrPositionMappingTest, FlippedInVerticesAreNeverTrueNeighborsArtifact) {
  // With p extremely small, flipped-in vertices are rare; with a crafted
  // seed loop we verify the non-neighbor mapping never emits a duplicate
  // of a surviving neighbor (members are deduplicated, so size would drop).
  GraphBuilder b(1, 20);
  for (VertexId l = 0; l < 20; l += 2) b.AddEdge(0, l);  // evens
  const BipartiteGraph g = b.Build();
  for (uint64_t seed = 0; seed < 200; ++seed) {
    Rng rng(seed);
    const auto noisy =
        ApplyRandomizedResponse(g, {Layer::kUpper, 0}, 0.5, rng);
    // Check strictly sorted (no duplicates survived the merge).
    const auto& m = noisy.SortedMembers();
    for (size_t i = 1; i < m.size(); ++i) EXPECT_LT(m[i - 1], m[i]);
  }
}

TEST(StorageModeTest, AutoPicksBitmapOnlyForDenseReleases) {
  // ε = 1 → p ≈ 0.269: dense regime for any degree.
  EXPECT_TRUE(UseBitmapStorage(0, 1000, 1.0));
  EXPECT_TRUE(UseBitmapStorage(100, 1000, 1.0));
  // ε = 4 → p ≈ 0.018: above the 1/128 intersection-cost crossover even
  // at degree 0 (sorted under the old 1/16 memory threshold — the
  // mid-density regime the dispatcher used to serve with a slow merge).
  EXPECT_TRUE(UseBitmapStorage(0, 1000, 4.0));
  // ε = 6 → p ≈ 0.0025 < 1/128: sparse unless the degree itself is dense.
  EXPECT_FALSE(UseBitmapStorage(0, 1000, 6.0));
  EXPECT_TRUE(UseBitmapStorage(500, 1000, 6.0));
  // Tiny domains always stay sorted.
  EXPECT_FALSE(UseBitmapStorage(10, kBitmapMinDomain - 1, 1.0));
}

TEST(StorageModeTest, ApplyRespectsAutoAndExplicitHints) {
  GraphBuilder b(1, 100);
  for (VertexId l = 0; l < 10; ++l) b.AddEdge(0, l);
  const BipartiteGraph g = b.Build();
  Rng rng(21);
  // ε = 1 on a 100-domain: auto must pack a bitmap.
  EXPECT_TRUE(ApplyRandomizedResponse(g, {Layer::kUpper, 0}, 1.0, rng)
                  .IsBitmap());
  // ε = 7 (p ≈ 0.0009) with degree 10 over a 10000-domain: expected noisy
  // density ≈ 0.002 < 1/128, auto must stay sorted.
  GraphBuilder sparse_b(1, 10000);
  for (VertexId l = 0; l < 10; ++l) sparse_b.AddEdge(0, l);
  const BipartiteGraph sparse_g = sparse_b.Build();
  EXPECT_FALSE(ApplyRandomizedResponse(sparse_g, {Layer::kUpper, 0}, 7.0,
                                       rng)
                   .IsBitmap());
  // Explicit hints pin the representation either way.
  EXPECT_FALSE(ApplyRandomizedResponse(g, {Layer::kUpper, 0}, 1.0, rng,
                                       RrStorage::kSorted)
                   .IsBitmap());
  EXPECT_TRUE(ApplyRandomizedResponse(g, {Layer::kUpper, 0}, 5.0, rng,
                                      RrStorage::kBitmap)
                  .IsBitmap());
}

TEST(BitmapModeTest, ViewContainsAndToSortedVectorAgree) {
  GraphBuilder b(1, 130);  // domain not a multiple of 64
  for (VertexId l = 0; l < 130; l += 3) b.AddEdge(0, l);
  const BipartiteGraph g = b.Build();
  Rng rng(31);
  for (int t = 0; t < 50; ++t) {
    const auto noisy = ApplyRandomizedResponse(g, {Layer::kUpper, 0}, 1.0,
                                               rng, RrStorage::kBitmap);
    ASSERT_TRUE(noisy.IsBitmap());
    EXPECT_EQ(noisy.DomainSize(), 130u);
    const std::vector<VertexId> members = noisy.ToSortedVector();
    EXPECT_EQ(members.size(), noisy.Size());
    // Strictly ascending, in domain, consistent with Contains().
    for (size_t i = 0; i < members.size(); ++i) {
      if (i > 0) {
        EXPECT_LT(members[i - 1], members[i]);
      }
      EXPECT_LT(members[i], 130u);
      EXPECT_TRUE(noisy.Contains(members[i]));
    }
    size_t contained = 0;
    for (VertexId v = 0; v < 130; ++v) contained += noisy.Contains(v);
    EXPECT_EQ(contained, noisy.Size());
  }
}

TEST(BitmapModeTest, TinyDomainDistributionMatchesAnalyticRr) {
  // Forced-bitmap releases over an enumerable domain: the empirical
  // distribution must match the exact per-bit RR law outcome by outcome,
  // i.e. the direct-to-words writer realizes the proven mechanism.
  GraphBuilder b(1, 3);
  b.AddEdge(0, 0).AddEdge(0, 2);
  const BipartiteGraph g = b.Build();
  const std::vector<int> truth = {1, 0, 1};
  const double epsilon = 1.0;
  const double p = FlipProbability(epsilon);
  const int trials = 200000;
  std::array<int, 8> observed{};
  Rng rng(47);
  for (int t = 0; t < trials; ++t) {
    const auto noisy = ApplyRandomizedResponse(g, {Layer::kUpper, 0},
                                               epsilon, rng,
                                               RrStorage::kBitmap);
    int mask = 0;
    for (int bit = 0; bit < 3; ++bit) {
      if (noisy.Contains(static_cast<VertexId>(bit))) mask |= 1 << bit;
    }
    ++observed[mask];
  }
  for (int mask = 0; mask < 8; ++mask) {
    double expected = 1.0;
    for (int bit = 0; bit < 3; ++bit) {
      const int out = (mask >> bit) & 1;
      expected *= (out == truth[static_cast<size_t>(bit)]) ? (1.0 - p) : p;
    }
    const double freq = static_cast<double>(observed[mask]) / trials;
    const double se = std::sqrt(expected * (1 - expected) / trials);
    EXPECT_NEAR(freq, expected, 5 * se + 1e-4) << "outcome " << mask;
  }
}

TEST(BitmapModeTest, MatchesDenseReferenceDistribution) {
  // Auto-mode bitmap releases against the O(n) bit-by-bit reference, on a
  // domain that is not a multiple of 64: noisy-degree moments and per-bit
  // marginals must agree.
  GraphBuilder b(1, 100);
  for (VertexId l = 0; l < 10; ++l) b.AddEdge(0, l);
  const BipartiteGraph g = b.Build();
  const double epsilon = 1.0;
  Rng rng_bitmap(7), rng_dense(8);
  RunningStats bitmap_sizes, dense_sizes;
  std::vector<int> bitmap_hits(100, 0), dense_hits(100, 0);
  const int trials = 4000;
  for (int t = 0; t < trials; ++t) {
    const auto bitmap =
        ApplyRandomizedResponse(g, {Layer::kUpper, 0}, epsilon, rng_bitmap);
    ASSERT_TRUE(bitmap.IsBitmap());
    const auto dense = ApplyRandomizedResponseDense(g, {Layer::kUpper, 0},
                                                    epsilon, rng_dense);
    bitmap_sizes.Add(static_cast<double>(bitmap.Size()));
    dense_sizes.Add(static_cast<double>(dense.Size()));
    for (VertexId l = 0; l < 100; ++l) {
      bitmap_hits[l] += bitmap.Contains(l);
      dense_hits[l] += dense.Contains(l);
    }
  }
  EXPECT_NEAR(bitmap_sizes.Mean(), dense_sizes.Mean(),
              4 * (bitmap_sizes.StdError() + dense_sizes.StdError()));
  for (VertexId l = 0; l < 100; ++l) {
    const double pb = static_cast<double>(bitmap_hits[l]) / trials;
    const double pd = static_cast<double>(dense_hits[l]) / trials;
    const double se = std::sqrt(0.25 / trials);
    EXPECT_NEAR(pb, pd, 10 * se) << "bit " << l;
  }
}

TEST(BitmapModeTest, SortedMembersOnBitmapDies) {
  GraphBuilder b(1, 100);
  b.AddEdge(0, 0);
  const BipartiteGraph g = b.Build();
  Rng rng(3);
  const auto noisy = ApplyRandomizedResponse(g, {Layer::kUpper, 0}, 1.0,
                                             rng, RrStorage::kBitmap);
  EXPECT_DEATH(noisy.SortedMembers(), "ToSortedVector");
}

TEST(ReserveHintTest, TracksExpectedDegreeAndCapsAtDomain) {
  EXPECT_GE(NoisyDegreeReserveHint(10, 100, 1.0),
            static_cast<size_t>(ExpectedNoisyDegree(10, 100, 1.0)));
  EXPECT_LE(NoisyDegreeReserveHint(10, 100, 1.0), 100u);
  EXPECT_LE(NoisyDegreeReserveHint(50, 50, 0.1), 50u);
}

TEST(ExpectedNoisyDegreeTest, Monotonicity) {
  // More budget -> fewer flipped zeros -> smaller noisy degree for sparse
  // vertices.
  EXPECT_GT(ExpectedNoisyDegree(10, 1000, 1.0),
            ExpectedNoisyDegree(10, 1000, 3.0));
  // Degenerate: degree equal to domain.
  const double p = FlipProbability(2.0);
  EXPECT_NEAR(ExpectedNoisyDegree(100, 100, 2.0), 100 * (1 - p), 1e-9);
}

}  // namespace
}  // namespace cne
