#include "ldp/laplace_mechanism.h"

#include <cmath>

#include <gtest/gtest.h>

#include "ldp/randomized_response.h"
#include "util/statistics.h"

namespace cne {
namespace {

TEST(LaplaceScaleTest, Formula) {
  EXPECT_DOUBLE_EQ(LaplaceScale(1.0, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(LaplaceScale(3.0, 1.5), 2.0);
}

TEST(LaplaceVarianceTest, Formula) {
  // Var(Lap(b)) = 2 b^2.
  EXPECT_DOUBLE_EQ(LaplaceVariance(1.0, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(LaplaceVariance(2.0, 1.0), 8.0);
  EXPECT_DOUBLE_EQ(LaplaceVariance(1.0, 2.0), 0.5);
}

TEST(LaplaceMechanismTest, UnbiasedAndCorrectVariance) {
  Rng rng(3);
  const double value = 42.0;
  const double sensitivity = 2.0;
  const double epsilon = 0.8;
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) {
    stats.Add(LaplaceMechanism(value, sensitivity, epsilon, rng));
  }
  EXPECT_NEAR(stats.Mean(), value, 5 * stats.StdError());
  EXPECT_NEAR(stats.Variance(), LaplaceVariance(sensitivity, epsilon),
              LaplaceVariance(sensitivity, epsilon) * 0.05);
}

TEST(LaplaceMechanismDeathTest, RejectsNonPositiveParameters) {
  Rng rng(5);
  EXPECT_DEATH(LaplaceMechanism(0.0, 0.0, 1.0, rng), "sensitivity");
  EXPECT_DEATH(LaplaceMechanism(0.0, 1.0, 0.0, rng), "budget");
}

TEST(SingleSourceSensitivityTest, Formula) {
  // Δ = (1-p)/(1-2p) with p = 1/(1+e^ε).
  const double eps = 1.0;
  const double p = FlipProbability(eps);
  EXPECT_DOUBLE_EQ(SingleSourceSensitivity(eps), (1 - p) / (1 - 2 * p));
}

TEST(SingleSourceSensitivityTest, ExceedsOneAndShrinksWithBudget) {
  // The sensitivity is the max |phi| which is always > 1 and approaches 1
  // as ε -> infinity (p -> 0).
  EXPECT_GT(SingleSourceSensitivity(0.5), SingleSourceSensitivity(2.0));
  EXPECT_GT(SingleSourceSensitivity(2.0), 1.0);
  EXPECT_NEAR(SingleSourceSensitivity(20.0), 1.0, 1e-6);
}

TEST(SingleSourceSensitivityTest, DominatesBothPhiMagnitudes) {
  // |phi| is either (1-p)/(1-2p) or p/(1-2p); the former is the max since
  // p < 1/2.
  for (double eps : {0.5, 1.0, 2.0, 3.0}) {
    const double p = FlipProbability(eps);
    const double hi = (1 - p) / (1 - 2 * p);
    const double lo = p / (1 - 2 * p);
    EXPECT_GT(hi, lo);
    EXPECT_DOUBLE_EQ(SingleSourceSensitivity(eps), hi);
  }
}

}  // namespace
}  // namespace cne
