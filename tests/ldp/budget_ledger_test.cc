#include "ldp/budget_ledger.h"

#include <algorithm>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace cne {
namespace {

constexpr LayeredVertex kV0{Layer::kLower, 0};
constexpr LayeredVertex kV1{Layer::kLower, 1};

TEST(BudgetLedgerTest, ChargesUpToLifetimeBudget) {
  BudgetLedger ledger(2.0);
  EXPECT_TRUE(ledger.TryCharge(kV0, 1.0));
  EXPECT_TRUE(ledger.TryCharge(kV0, 1.0));
  EXPECT_DOUBLE_EQ(ledger.Spent(kV0), 2.0);
  EXPECT_NEAR(ledger.Remaining(kV0), 0.0, 1e-12);
}

TEST(BudgetLedgerTest, RejectsOverBudgetChargeWithoutRecordingIt) {
  BudgetLedger ledger(2.0);
  EXPECT_TRUE(ledger.TryCharge(kV0, 1.5));
  EXPECT_FALSE(ledger.TryCharge(kV0, 1.0));
  // The rejected charge must not have consumed anything.
  EXPECT_DOUBLE_EQ(ledger.Spent(kV0), 1.5);
  EXPECT_TRUE(ledger.TryCharge(kV0, 0.5));
}

TEST(BudgetLedgerTest, SecondFullReleaseIsAlwaysRejected) {
  // The service invariant: under one lifetime budget ε, a vertex's ε-RR
  // neighbor-list release can happen exactly once.
  BudgetLedger ledger(2.0);
  EXPECT_TRUE(ledger.TryCharge(kV0, 2.0));
  EXPECT_FALSE(ledger.TryCharge(kV0, 2.0));
  EXPECT_FALSE(ledger.TryCharge(kV0, 0.1));
}

TEST(BudgetLedgerTest, VerticesComposeInParallel) {
  BudgetLedger ledger(1.0);
  EXPECT_TRUE(ledger.TryCharge(kV0, 1.0));
  // A different vertex — and the same id on the other layer — have their
  // own neighbor lists, hence their own budgets.
  EXPECT_TRUE(ledger.TryCharge(kV1, 1.0));
  EXPECT_TRUE(ledger.TryCharge({Layer::kUpper, 0}, 1.0));
  EXPECT_EQ(ledger.NumChargedVertices(), 3u);
  EXPECT_DOUBLE_EQ(ledger.TotalSpent(), 3.0);
}

TEST(BudgetLedgerTest, ToleratesSplitRoundingDrift) {
  BudgetLedger ledger(2.0);
  const double epsilon1 = 2.0 * 0.3;
  const double epsilon2 = 2.0 - epsilon1;
  EXPECT_TRUE(ledger.TryCharge(kV0, epsilon1));
  EXPECT_TRUE(ledger.TryCharge(kV0, epsilon2));
}

TEST(BudgetLedgerTest, SnapshotIsSortedAndComplete) {
  BudgetLedger ledger(3.0);
  ASSERT_TRUE(ledger.TryCharge({Layer::kLower, 7}, 1.0));
  ASSERT_TRUE(ledger.TryCharge({Layer::kUpper, 9}, 2.0));
  ASSERT_TRUE(ledger.TryCharge({Layer::kLower, 2}, 3.0));
  const auto snapshot = ledger.Snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[0].vertex, (LayeredVertex{Layer::kUpper, 9}));
  EXPECT_EQ(snapshot[1].vertex, (LayeredVertex{Layer::kLower, 2}));
  EXPECT_EQ(snapshot[2].vertex, (LayeredVertex{Layer::kLower, 7}));
  EXPECT_DOUBLE_EQ(snapshot[1].spent, 3.0);
  EXPECT_DOUBLE_EQ(snapshot[1].remaining, 0.0);
  EXPECT_NEAR(ledger.MinRemaining(), 0.0, 1e-12);
}

TEST(BudgetLedgerTest, MinRemainingWithoutChargesIsFullBudget) {
  BudgetLedger ledger(1.5);
  EXPECT_DOUBLE_EQ(ledger.MinRemaining(), 1.5);
}

TEST(BudgetLedgerTest, ConcurrentChargesNeverExceedBudget) {
  // 8 threads race to charge the same vertex; exactly 4 unit charges can
  // fit in a budget of 4, no matter the interleaving.
  BudgetLedger ledger(4.0);
  std::atomic<int> granted{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 2; ++i) {
        if (ledger.TryCharge(kV0, 1.0)) granted.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(granted.load(), 4);
  EXPECT_DOUBLE_EQ(ledger.Spent(kV0), 4.0);
}

TEST(BudgetLedgerTest, SerializeDeserializeRoundTripsExactly) {
  BudgetLedger ledger(2.0);
  ASSERT_TRUE(ledger.TryCharge(kV0, 0.75));
  ASSERT_TRUE(ledger.TryCharge({Layer::kUpper, 3}, 2.0));
  ledger.RaiseLifetimeBudget(3.0);
  ASSERT_TRUE(ledger.TryCharge(kV0, 1.25));

  ByteWriter out;
  ledger.Serialize(out);
  BudgetLedger restored(2.0);  // constructed as at service start
  ByteReader in(out.data());
  restored.Deserialize(in);

  EXPECT_DOUBLE_EQ(restored.lifetime_budget(), 3.0);
  EXPECT_EQ(restored.NumChargedVertices(), ledger.NumChargedVertices());
  // Bitwise equality, not approximate: recovery must reproduce the exact
  // accumulated doubles or residual-budget admission could diverge.
  const auto a = ledger.Snapshot();
  const auto b = restored.Snapshot();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].vertex, b[i].vertex);
    EXPECT_EQ(a[i].spent, b[i].spent);
  }

  // Serializing the restored ledger reproduces the same bytes.
  ByteWriter again;
  restored.Serialize(again);
  ASSERT_EQ(again.size(), out.size());
  EXPECT_TRUE(std::equal(out.data().begin(), out.data().end(),
                         again.data().begin()));
}

TEST(BudgetLedgerTest, ReplayAccumulatesLikeTheOriginalCharges) {
  BudgetLedger original(2.0);
  ASSERT_TRUE(original.TryCharge(kV0, 0.5));
  ASSERT_TRUE(original.TryCharge(kV0, 0.5));
  ASSERT_TRUE(original.TryCharge(kV0, 1.0));

  BudgetLedger replayed(2.0);
  replayed.Replay(kV0, 0.5);
  replayed.Replay(kV0, 0.5);
  replayed.Replay(kV0, 1.0);
  EXPECT_EQ(original.Spent(kV0), replayed.Spent(kV0));
  // The vertex is exactly full: one more unit charge must still be
  // rejected after replay, as it would have been before the crash.
  EXPECT_FALSE(replayed.TryCharge(kV0, 1.0));
}

TEST(BudgetLedgerTest, NumExhaustedTracksBoundaryTransitions) {
  BudgetLedger ledger(2.0);
  EXPECT_EQ(ledger.NumExhausted(), 0u);
  ASSERT_TRUE(ledger.TryCharge(kV0, 1.0));
  EXPECT_EQ(ledger.NumExhausted(), 0u);
  ASSERT_TRUE(ledger.TryCharge(kV0, 1.0));  // kV0 hits the boundary
  EXPECT_EQ(ledger.NumExhausted(), 1u);
  ASSERT_TRUE(ledger.TryCharge(kV1, 2.0));
  EXPECT_EQ(ledger.NumExhausted(), 2u);

  // Rollback across the boundary un-exhausts; an exact re-restore
  // re-exhausts.
  ledger.RestoreSpent(kV0, 1.0);
  EXPECT_EQ(ledger.NumExhausted(), 1u);
  ledger.RestoreSpent(kV0, 2.0);
  EXPECT_EQ(ledger.NumExhausted(), 2u);

  // Raising the budget gives every vertex headroom again.
  ledger.RaiseLifetimeBudget(3.0);
  EXPECT_EQ(ledger.NumExhausted(), 0u);
}

TEST(BudgetLedgerTest, ReplayAndDeserializeMaintainNumExhausted) {
  BudgetLedger ledger(1.0);
  ledger.Replay(kV0, 1.0);
  EXPECT_EQ(ledger.NumExhausted(), 1u);

  ByteWriter out;
  ledger.Serialize(out);
  BudgetLedger restored(1.0);
  ByteReader in(out.data());
  restored.Deserialize(in);
  EXPECT_EQ(restored.NumExhausted(), 1u);
}

TEST(BudgetLedgerTest, TelemetryAggregatesAndBinsResiduals) {
  BudgetLedger ledger(2.0);
  ASSERT_TRUE(ledger.TryCharge(kV0, 2.0));                  // remaining 0
  ASSERT_TRUE(ledger.TryCharge(kV1, 0.5));                  // remaining 1.5
  ASSERT_TRUE(ledger.TryCharge({Layer::kUpper, 4}, 1.1));   // remaining 0.9

  const BudgetLedgerTelemetry t = ledger.GetTelemetry(/*bins=*/4);
  EXPECT_DOUBLE_EQ(t.lifetime_budget, 2.0);
  EXPECT_EQ(t.charged_vertices, 3u);
  EXPECT_EQ(t.exhausted_vertices, 1u);
  EXPECT_NEAR(t.total_spent, 3.6, 1e-12);
  EXPECT_NEAR(t.min_remaining, 0.0, 1e-12);
  EXPECT_NEAR(t.sum_remaining, 2.4, 1e-12);
  // Bin width 0.5: remaining 0 -> bin 0, 0.9 -> bin 1, 1.5 -> bin 3.
  ASSERT_EQ(t.residual_histogram.size(), 4u);
  EXPECT_EQ(t.residual_histogram[0], 1u);
  EXPECT_EQ(t.residual_histogram[1], 1u);
  EXPECT_EQ(t.residual_histogram[2], 0u);
  EXPECT_EQ(t.residual_histogram[3], 1u);
  // The histogram always accounts for every charged vertex.
  uint64_t binned = 0;
  for (uint64_t c : t.residual_histogram) binned += c;
  EXPECT_EQ(binned, t.charged_vertices);
}

TEST(BudgetLedgerTest, TelemetryOnFreshLedgerIsEmpty) {
  BudgetLedger ledger(1.5);
  const BudgetLedgerTelemetry t = ledger.GetTelemetry();
  EXPECT_EQ(t.charged_vertices, 0u);
  EXPECT_EQ(t.exhausted_vertices, 0u);
  EXPECT_DOUBLE_EQ(t.total_spent, 0.0);
  EXPECT_DOUBLE_EQ(t.min_remaining, 1.5);
  EXPECT_DOUBLE_EQ(t.sum_remaining, 0.0);
}

TEST(BudgetLedgerDeathTest, ReplayOverdraftIsFatalNotRejected) {
  BudgetLedger ledger(1.0);
  ledger.Replay(kV0, 1.0);
  EXPECT_DEATH(ledger.Replay(kV0, 0.5), "overdraws");
}

TEST(BudgetLedgerDeathTest, DeserializeIntoChargedLedgerIsFatal) {
  BudgetLedger source(1.0);
  ASSERT_TRUE(source.TryCharge(kV0, 1.0));
  ByteWriter out;
  source.Serialize(out);

  BudgetLedger target(1.0);
  ASSERT_TRUE(target.TryCharge({Layer::kUpper, 9}, 0.5));
  ByteReader in(out.data());
  EXPECT_DEATH(target.Deserialize(in), "fresh ledger");
}

TEST(BudgetLedgerDeathTest, RejectsInvalidConstructionAndCharges) {
  EXPECT_DEATH(BudgetLedger(0.0), "positive");
  BudgetLedger ledger(1.0);
  EXPECT_DEATH(ledger.TryCharge(kV0, 0.0), "positive");
}

}  // namespace
}  // namespace cne
