#include "ldp/degree_histogram.h"

#include <numeric>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/graph_builder.h"

namespace cne {
namespace {

TEST(ExactDegreeHistogramTest, BucketsAndOverflow) {
  // Upper degrees: 3, 1, 0.
  GraphBuilder b(3, 4);
  b.AddEdge(0, 0).AddEdge(0, 1).AddEdge(0, 2).AddEdge(1, 0);
  const BipartiteGraph g = b.Build();
  const auto h = ExactDegreeHistogram(g, Layer::kUpper, 3);
  ASSERT_EQ(h.size(), 3u);
  EXPECT_DOUBLE_EQ(h[0], 1.0);
  EXPECT_DOUBLE_EQ(h[1], 1.0);
  EXPECT_DOUBLE_EQ(h[2], 1.0);  // degree 3 overflows into the last bucket
}

TEST(EstimateDegreeHistogramTest, PreservesVertexCount) {
  Rng gen(1);
  const BipartiteGraph g = ErdosRenyiBipartite(500, 500, 3000, gen);
  Rng rng(2);
  const auto est = EstimateDegreeHistogram(g, Layer::kUpper, 1.0, 20, rng);
  EXPECT_EQ(est.num_vertices, 500u);
  const double total =
      std::accumulate(est.counts.begin(), est.counts.end(), 0.0);
  EXPECT_DOUBLE_EQ(total, 500.0);
  for (double c : est.counts) EXPECT_GE(c, 0.0);
}

TEST(EstimateDegreeHistogramTest, HighBudgetApproachesExact) {
  Rng gen(3);
  const BipartiteGraph g = ErdosRenyiBipartite(2000, 500, 8000, gen);
  Rng rng(4);
  const auto exact = ExactDegreeHistogram(g, Layer::kUpper, 16);
  const auto strong =
      EstimateDegreeHistogram(g, Layer::kUpper, 8.0, 16, rng);
  const auto weak =
      EstimateDegreeHistogram(g, Layer::kUpper, 0.3, 16, rng);
  const double tv_strong = HistogramTotalVariation(exact, strong.counts);
  const double tv_weak = HistogramTotalVariation(exact, weak.counts);
  EXPECT_LT(tv_strong, tv_weak);
  EXPECT_LT(tv_strong, 0.15);
}

TEST(EstimateDegreeHistogramTest, EmptyLayerYieldsZeroCounts) {
  GraphBuilder b(3, 0);
  const BipartiteGraph g = b.Build();
  Rng rng(5);
  const auto est = EstimateDegreeHistogram(g, Layer::kLower, 1.0, 4, rng);
  for (double c : est.counts) EXPECT_DOUBLE_EQ(c, 0.0);
}

TEST(HistogramTotalVariationTest, Basics) {
  EXPECT_DOUBLE_EQ(HistogramTotalVariation({1, 0}, {1, 0}), 0.0);
  EXPECT_DOUBLE_EQ(HistogramTotalVariation({1, 0}, {0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(HistogramTotalVariation({2, 0}, {1, 1}), 0.5);
  // Scale invariance.
  EXPECT_DOUBLE_EQ(HistogramTotalVariation({4, 0}, {1, 1}), 0.5);
  // Degenerate cases.
  EXPECT_DOUBLE_EQ(HistogramTotalVariation({0, 0}, {0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(HistogramTotalVariation({0, 0}, {1, 0}), 1.0);
}

TEST(HistogramTotalVariationDeathTest, SizeMismatch) {
  EXPECT_DEATH(HistogramTotalVariation({1.0}, {1.0, 2.0}), "sizes differ");
}

}  // namespace
}  // namespace cne
