// Privacy property suite: verifies the ε-edge-LDP guarantee itself, not
// just the estimators' accuracy.
//
// For randomized response over a tiny domain the output distribution is
// enumerable: P(noisy set S | neighbor list A) = Π_j p or (1-p) per bit.
// The tests check (a) the analytic distributions of any two neighboring
// lists satisfy the e^ε bound with equality in the worst case, and
// (b) the sparse sampler's empirical distribution matches the analytic
// one outcome by outcome — i.e. the O(d + pn) implementation provides
// exactly the mechanism whose privacy is proven.

#include <array>
#include <cmath>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "graph/graph_builder.h"
#include "ldp/budget.h"
#include "ldp/randomized_response.h"
#include "util/rng.h"

namespace cne {
namespace {

// Probability of observing output bits `out` from true bits `in` under RR
// with flip probability p.
double RrOutputProbability(const std::vector<int>& in,
                           const std::vector<int>& out, double p) {
  double prob = 1.0;
  for (size_t i = 0; i < in.size(); ++i) {
    prob *= (in[i] == out[i]) ? (1.0 - p) : p;
  }
  return prob;
}

TEST(RrPrivacyTest, AnalyticEpsilonBoundIsTightOneBit) {
  for (double epsilon : {0.5, 1.0, 2.0, 3.0}) {
    const double p = FlipProbability(epsilon);
    // Lists differing in one bit: probability ratio per outcome is either
    // (1-p)/p or p/(1-p); the max must be exactly e^eps.
    const double worst = (1.0 - p) / p;
    EXPECT_NEAR(worst, std::exp(epsilon), 1e-9 * std::exp(epsilon))
        << "eps " << epsilon;
  }
}

TEST(RrPrivacyTest, AllOutcomesWithinBudgetForNeighboringLists) {
  const double epsilon = 1.2;
  const double p = FlipProbability(epsilon);
  const std::vector<int> list_a = {1, 0, 1};
  const std::vector<int> list_b = {1, 1, 1};  // differs in bit 1
  for (int mask = 0; mask < 8; ++mask) {
    const std::vector<int> out = {(mask >> 0) & 1, (mask >> 1) & 1,
                                  (mask >> 2) & 1};
    const double pa = RrOutputProbability(list_a, out, p);
    const double pb = RrOutputProbability(list_b, out, p);
    EXPECT_LE(pa, std::exp(epsilon) * pb + 1e-12) << "outcome " << mask;
    EXPECT_LE(pb, std::exp(epsilon) * pa + 1e-12) << "outcome " << mask;
  }
}

TEST(RrPrivacyTest, SparseSamplerRealizesTheAnalyticMechanism) {
  // Domain of 3 lower vertices, true neighbors {0, 2}.
  GraphBuilder b(1, 3);
  b.AddEdge(0, 0).AddEdge(0, 2);
  const BipartiteGraph g = b.Build();
  const std::vector<int> truth = {1, 0, 1};
  const double epsilon = 1.0;
  const double p = FlipProbability(epsilon);

  const int trials = 200000;
  std::array<int, 8> observed{};
  Rng rng(99);
  for (int t = 0; t < trials; ++t) {
    const NoisyNeighborSet noisy =
        ApplyRandomizedResponse(g, {Layer::kUpper, 0}, epsilon, rng);
    int mask = 0;
    for (int bit = 0; bit < 3; ++bit) {
      if (noisy.Contains(static_cast<VertexId>(bit))) mask |= 1 << bit;
    }
    ++observed[mask];
  }
  for (int mask = 0; mask < 8; ++mask) {
    const std::vector<int> out = {(mask >> 0) & 1, (mask >> 1) & 1,
                                  (mask >> 2) & 1};
    const double expected = RrOutputProbability(truth, out, p);
    const double freq = static_cast<double>(observed[mask]) / trials;
    const double se = std::sqrt(expected * (1 - expected) / trials);
    EXPECT_NEAR(freq, expected, 5 * se + 1e-4) << "outcome " << mask;
  }
}

TEST(RrPrivacyTest, SparseAndDenseSamplersShareTheDistribution) {
  GraphBuilder b(1, 4);
  b.AddEdge(0, 1).AddEdge(0, 3);
  const BipartiteGraph g = b.Build();
  const double epsilon = 0.8;
  const int trials = 100000;
  std::map<int, int> sparse_counts, dense_counts;
  Rng rng_s(7), rng_d(8);
  auto mask_of = [](const NoisyNeighborSet& s) {
    int mask = 0;
    for (VertexId v : s.SortedMembers()) mask |= 1 << v;
    return mask;
  };
  for (int t = 0; t < trials; ++t) {
    ++sparse_counts[mask_of(
        ApplyRandomizedResponse(g, {Layer::kUpper, 0}, epsilon, rng_s))];
    ++dense_counts[mask_of(ApplyRandomizedResponseDense(
        g, {Layer::kUpper, 0}, epsilon, rng_d))];
  }
  for (int mask = 0; mask < 16; ++mask) {
    const double fs = static_cast<double>(sparse_counts[mask]) / trials;
    const double fd = static_cast<double>(dense_counts[mask]) / trials;
    EXPECT_NEAR(fs, fd, 5 * std::sqrt(0.25 / trials) + 1e-4)
        << "outcome " << mask;
  }
}

TEST(LaplacePrivacyTest, DensityRatioBoundedByBudget) {
  // Laplace(Δ/ε) on outputs f and f' with |f - f'| <= Δ: the density
  // ratio at any point is at most e^ε. Check on a grid.
  const double epsilon = 1.5;
  const double sensitivity = 2.0;
  const double b = sensitivity / epsilon;
  auto density = [&](double x, double mean) {
    return std::exp(-std::abs(x - mean) / b) / (2 * b);
  };
  const double f1 = 10.0;
  const double f2 = f1 + sensitivity;  // worst-case neighboring output
  for (double x = -20; x <= 40; x += 0.5) {
    const double ratio = density(x, f1) / density(x, f2);
    EXPECT_LE(ratio, std::exp(epsilon) + 1e-9) << "x " << x;
    EXPECT_GE(ratio, std::exp(-epsilon) - 1e-9) << "x " << x;
  }
}

TEST(CompositionPrivacyTest, MultiRSSBudgetNeverExceedsEpsilon) {
  // Structural check mirrored by the accountant: the even split plus
  // sequential composition is exactly ε.
  BudgetAccountant acc;
  const double epsilon = 2.0;
  const BudgetSplit split = EvenTwoWaySplit(epsilon);
  acc.ChargeSequential("randomized_response", split.epsilon1);
  acc.ChargeSequential("laplace", split.epsilon2);
  EXPECT_DOUBLE_EQ(acc.TotalEpsilon(), epsilon);
}

TEST(CompositionPrivacyTest, MultiRDSRoundsComposeToEpsilon) {
  BudgetAccountant acc;
  const double epsilon = 2.0;
  const double eps0 = 0.05 * epsilon;
  const double eps1 = 0.9;
  const double eps2 = epsilon - eps0 - eps1;
  // Round 1: every query-layer vertex reports its degree (disjoint lists).
  for (int v = 0; v < 5; ++v) acc.ChargeParallel("degree", eps0, 1);
  // Round 2: RR from u and w (disjoint neighbor lists).
  acc.ChargeParallel("rr", eps1, 2);
  acc.ChargeParallel("rr", eps1, 2);
  // Round 3: Laplace releases from u and w (disjoint neighbor lists).
  acc.ChargeParallel("laplace", eps2, 3);
  acc.ChargeParallel("laplace", eps2, 3);
  EXPECT_NEAR(acc.TotalEpsilon(), epsilon, 1e-12);
}

}  // namespace
}  // namespace cne
