#include "ldp/budget.h"

#include <gtest/gtest.h>

namespace cne {
namespace {

TEST(BudgetAccountantTest, EmptyIsZero) {
  BudgetAccountant acc;
  EXPECT_DOUBLE_EQ(acc.TotalEpsilon(), 0.0);
}

TEST(BudgetAccountantTest, SequentialChargesSum) {
  BudgetAccountant acc;
  acc.ChargeSequential("rr", 1.0);
  acc.ChargeSequential("laplace", 0.5);
  EXPECT_DOUBLE_EQ(acc.TotalEpsilon(), 1.5);
}

TEST(BudgetAccountantTest, ParallelChargesTakeMax) {
  BudgetAccountant acc;
  // Degree reports of many vertices in one round: disjoint neighbor lists.
  acc.ChargeParallel("degree", 0.1, 1);
  acc.ChargeParallel("degree", 0.1, 1);
  acc.ChargeParallel("degree", 0.1, 1);
  EXPECT_DOUBLE_EQ(acc.TotalEpsilon(), 0.1);
}

TEST(BudgetAccountantTest, MixedComposition) {
  // The MultiR-DS structure: ε0 parallel degree round, ε1 RR round
  // (parallel over u and w), ε2 Laplace round (parallel over u and w).
  BudgetAccountant acc;
  acc.ChargeParallel("degree", 0.1, 1);
  acc.ChargeParallel("degree", 0.1, 1);
  acc.ChargeParallel("rr", 0.9, 2);
  acc.ChargeParallel("rr", 0.9, 2);
  acc.ChargeParallel("laplace", 1.0, 3);
  acc.ChargeParallel("laplace", 1.0, 3);
  EXPECT_DOUBLE_EQ(acc.TotalEpsilon(), 2.0);
}

TEST(BudgetAccountantTest, DistinctGroupsAddUp) {
  BudgetAccountant acc;
  acc.ChargeParallel("a", 0.3, 1);
  acc.ChargeParallel("b", 0.7, 2);
  EXPECT_DOUBLE_EQ(acc.TotalEpsilon(), 1.0);
}

TEST(BudgetAccountantTest, ResetClears) {
  BudgetAccountant acc;
  acc.ChargeSequential("x", 1.0);
  acc.Reset();
  EXPECT_DOUBLE_EQ(acc.TotalEpsilon(), 0.0);
  EXPECT_TRUE(acc.charges().empty());
}

TEST(BudgetAccountantDeathTest, RejectsNegativeCharge) {
  BudgetAccountant acc;
  EXPECT_DEATH(acc.ChargeSequential("x", -0.1), "negative");
}

TEST(BudgetSplitTest, EvenTwoWay) {
  const BudgetSplit split = EvenTwoWaySplit(2.0);
  EXPECT_DOUBLE_EQ(split.epsilon0, 0.0);
  EXPECT_DOUBLE_EQ(split.epsilon1, 1.0);
  EXPECT_DOUBLE_EQ(split.epsilon2, 1.0);
  EXPECT_DOUBLE_EQ(split.Total(), 2.0);
}

TEST(BudgetSplitTest, ValidateAccepts) {
  ValidateSplit({0.1, 0.9, 1.0}, 2.0);  // must not die
  SUCCEED();
}

TEST(BudgetSplitDeathTest, ValidateRejectsBadTotal) {
  EXPECT_DEATH(ValidateSplit({0.0, 1.0, 0.5}, 2.0), "split sums");
}

TEST(BudgetSplitDeathTest, ValidateRejectsZeroParts) {
  EXPECT_DEATH(ValidateSplit({0.0, 0.0, 2.0}, 2.0), "positive");
}

}  // namespace
}  // namespace cne
