#include "ldp/comm_model.h"

#include <gtest/gtest.h>

#include "ldp/randomized_response.h"

namespace cne {
namespace {

TEST(CommLedgerTest, StartsEmpty) {
  CommLedger ledger;
  EXPECT_DOUBLE_EQ(ledger.TotalBytes(), 0.0);
}

TEST(CommLedgerTest, AccumulatesUploadsAndDownloads) {
  CommLedger ledger;
  ledger.UploadEdges(10);    // 40 bytes
  ledger.DownloadEdges(5);   // 20 bytes
  ledger.UploadScalars(2);   // 16 bytes
  EXPECT_DOUBLE_EQ(ledger.UploadedBytes(), 56.0);
  EXPECT_DOUBLE_EQ(ledger.DownloadedBytes(), 20.0);
  EXPECT_DOUBLE_EQ(ledger.TotalBytes(), 76.0);
}

TEST(CommLedgerTest, CustomModel) {
  CommModel model;
  model.bytes_per_edge = 8.0;
  model.bytes_per_scalar = 4.0;
  CommLedger ledger(model);
  ledger.UploadEdges(3);
  ledger.UploadScalars(3);
  EXPECT_DOUBLE_EQ(ledger.UploadedBytes(), 36.0);
}

TEST(ExpectedRrUploadTest, MatchesNoisyDegreeFormula) {
  const double bytes = ExpectedRrUploadBytes(10, 1000, 2.0);
  EXPECT_DOUBLE_EQ(bytes, 4.0 * ExpectedNoisyDegree(10, 1000, 2.0));
}

TEST(ExpectedRrUploadTest, ShrinksWithBudgetForSparseVertices) {
  EXPECT_GT(ExpectedRrUploadBytes(10, 10000, 1.0),
            ExpectedRrUploadBytes(10, 10000, 3.0));
}

}  // namespace
}  // namespace cne
