// Statistical and determinism tests over the synthetic scale generator
// (graph/synthetic.h): exact per-seed determinism, chunk/thread
// independence, degree-sequence moments against the Chung–Lu weights,
// distinct-edge concentration within the analytic collision bound, and
// byte-identical cache round trips.

#include "graph/synthetic.h"

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/graph_builder.h"

namespace cne {
namespace {

namespace fs = std::filesystem;

std::string FreshCacheDir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  return dir.string();
}

SyntheticSpec SmallSpec() {
  SyntheticSpec spec;
  spec.num_upper = 500;
  spec.num_lower = 800;
  spec.num_edges = 200000;  // > kSyntheticDrawsPerChunk: multi-chunk
  spec.seed = 42;
  return spec;
}

std::vector<Edge> Draws(const SyntheticSampler& sampler) {
  std::vector<Edge> draws;
  draws.reserve(sampler.spec().num_edges);
  sampler.EmitAll([&](VertexId u, VertexId l) { draws.push_back({u, l}); });
  return draws;
}

std::vector<uint8_t> FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

TEST(SyntheticSamplerTest, ExactDeterminismPerSeed) {
  const SyntheticSpec spec = SmallSpec();
  const auto a = Draws(SyntheticSampler(spec));
  const auto b = Draws(SyntheticSampler(spec));
  ASSERT_EQ(a.size(), spec.num_edges);
  EXPECT_EQ(a, b);
}

TEST(SyntheticSamplerTest, DifferentSeedsDiverge) {
  SyntheticSpec spec = SmallSpec();
  const auto a = Draws(SyntheticSampler(spec));
  spec.seed = 43;
  const auto b = Draws(SyntheticSampler(spec));
  EXPECT_NE(a, b);
}

TEST(SyntheticSamplerTest, ChunksComposeToFullStreamInAnyOrder) {
  // Each chunk is an independent substream: emitting chunks in reverse
  // order and reassembling must reproduce EmitAll exactly. This is the
  // property that makes the stream independent of consumer thread count.
  const SyntheticSpec spec = SmallSpec();
  const SyntheticSampler sampler(spec);
  const auto expected = Draws(sampler);

  const uint64_t chunks = sampler.NumChunks();
  ASSERT_GE(chunks, 3u);  // the test is vacuous on a single chunk
  std::vector<std::vector<Edge>> parts(chunks);
  for (uint64_t c = chunks; c-- > 0;) {
    sampler.EmitChunk(
        c, [&](VertexId u, VertexId l) { parts[c].push_back({u, l}); });
  }
  std::vector<Edge> reassembled;
  for (const auto& part : parts) {
    reassembled.insert(reassembled.end(), part.begin(), part.end());
  }
  EXPECT_EQ(reassembled, expected);
}

TEST(SyntheticSamplerTest, RepeatedChunkEmissionIsIdempotent) {
  const SyntheticSpec spec = SmallSpec();
  const SyntheticSampler sampler(spec);
  std::vector<Edge> first, second;
  sampler.EmitChunk(1, [&](VertexId u, VertexId l) { first.push_back({u, l}); });
  sampler.EmitChunk(1,
                    [&](VertexId u, VertexId l) { second.push_back({u, l}); });
  EXPECT_EQ(first, second);
}

TEST(SyntheticSamplerTest, DegreeMomentsMatchChungLuWeights) {
  // Draw counts per upper vertex are Binomial(T, w_i); check the head of
  // the weight sequence within 6 binomial standard deviations, and the
  // total exactly.
  const SyntheticSpec spec = SmallSpec();
  const double T = static_cast<double>(spec.num_edges);
  const auto weights = PowerLawWeights(spec.num_upper, spec.exponent_upper);

  std::vector<uint64_t> draw_count(spec.num_upper, 0);
  uint64_t total = 0;
  SyntheticSampler(spec).EmitAll([&](VertexId u, VertexId) {
    ++draw_count[u];
    ++total;
  });
  ASSERT_EQ(total, spec.num_edges);

  for (VertexId i = 0; i < 20; ++i) {
    const double mean = T * weights[i];
    const double sigma = std::sqrt(mean * (1.0 - weights[i]));
    EXPECT_NEAR(static_cast<double>(draw_count[i]), mean, 6.0 * sigma)
        << "upper vertex " << i;
  }

  // Skew sanity: the top decile must out-draw the bottom decile per
  // vertex by a wide margin under exponent 2.1.
  const VertexId decile = spec.num_upper / 10;
  uint64_t top = 0, bottom = 0;
  for (VertexId i = 0; i < decile; ++i) top += draw_count[i];
  for (VertexId i = spec.num_upper - decile; i < spec.num_upper; ++i) {
    bottom += draw_count[i];
  }
  EXPECT_GT(top, 10 * bottom);
}

TEST(SyntheticSamplerTest, DistinctEdgeCountWithinCollisionBound) {
  // E[draws - distinct] <= E[# colliding draw pairs]
  //                      = C(T,2) * (sum w_u^2)(sum w_l^2),
  // so the deduplicated graph keeps all but an analytically bounded
  // number of draws. The lower bound uses 4x the expectation as slack
  // (Markov keeps the violation probability under 25%; with a fixed seed
  // the test is deterministic anyway).
  const SyntheticSpec spec = SmallSpec();
  const auto wu = PowerLawWeights(spec.num_upper, spec.exponent_upper);
  const auto wl = PowerLawWeights(spec.num_lower, spec.exponent_lower);
  const auto sum_sq = [](const std::vector<double>& w) {
    double s = 0.0;
    for (double x : w) s += x * x;
    return s;
  };
  const double T = static_cast<double>(spec.num_edges);
  const double expected_collisions = 0.5 * T * (T - 1.0) * sum_sq(wu) * sum_sq(wl);

  const BipartiteGraph g = BuildSyntheticGraph(spec, FreshCacheDir("syn_bound"));
  const double distinct = static_cast<double>(g.NumEdges());
  EXPECT_LE(distinct, T);
  EXPECT_GE(distinct, T - 4.0 * expected_collisions);
  // Hub×hub repeats are near-certain at this scale: dedup must bite.
  EXPECT_LT(distinct, T);
}

TEST(SyntheticCacheTest, RoundTripIsByteIdentical) {
  const SyntheticSpec spec = SmallSpec();
  const std::string dir = FreshCacheDir("syn_cache_rt");

  const EdgeCacheEntry first = EnsureEdgeCache(spec, dir);
  EXPECT_TRUE(first.generated);
  const auto bytes = FileBytes(first.path);
  ASSERT_EQ(bytes.size(), first.file_bytes);

  // Second call is a hit and leaves the file untouched.
  const EdgeCacheEntry second = EnsureEdgeCache(spec, dir);
  EXPECT_FALSE(second.generated);
  EXPECT_EQ(second.path, first.path);
  EXPECT_EQ(FileBytes(second.path), bytes);

  // Full regeneration from scratch is byte-identical.
  fs::remove(first.path);
  const EdgeCacheEntry third = EnsureEdgeCache(spec, dir);
  EXPECT_TRUE(third.generated);
  EXPECT_EQ(FileBytes(third.path), bytes);
}

TEST(SyntheticCacheTest, ScanMatchesDirectEmission) {
  const SyntheticSpec spec = SmallSpec();
  const std::string dir = FreshCacheDir("syn_cache_scan");
  const EdgeCacheEntry entry = EnsureEdgeCache(spec, dir);

  std::vector<Edge> scanned;
  ForEachCachedEdge(entry.path, spec,
                    [&](VertexId u, VertexId l) { scanned.push_back({u, l}); });
  EXPECT_EQ(scanned, Draws(SyntheticSampler(spec)));
}

TEST(SyntheticCacheTest, CorruptPayloadFailsTheScan) {
  const SyntheticSpec spec = SmallSpec();
  const std::string dir = FreshCacheDir("syn_cache_corrupt");
  const EdgeCacheEntry entry = EnsureEdgeCache(spec, dir);

  auto bytes = FileBytes(entry.path);
  bytes[bytes.size() / 2] ^= 0xff;  // flip a payload byte
  std::ofstream(entry.path, std::ios::binary | std::ios::trunc)
      .write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));

  EXPECT_THROW(ForEachCachedEdge(entry.path, spec, [](VertexId, VertexId) {}),
               std::runtime_error);
}

TEST(SyntheticCacheTest, TruncatedEntryIsRegenerated) {
  const SyntheticSpec spec = SmallSpec();
  const std::string dir = FreshCacheDir("syn_cache_trunc");
  const EdgeCacheEntry entry = EnsureEdgeCache(spec, dir);
  const auto bytes = FileBytes(entry.path);

  fs::resize_file(entry.path, bytes.size() / 2);
  const EdgeCacheEntry again = EnsureEdgeCache(spec, dir);
  EXPECT_TRUE(again.generated);
  EXPECT_EQ(FileBytes(again.path), bytes);
}

TEST(SyntheticCacheTest, DifferentSpecsGetDifferentEntries) {
  SyntheticSpec a = SmallSpec();
  SyntheticSpec b = a;
  b.seed += 1;
  SyntheticSpec c = a;
  c.exponent_lower = 3.0;
  EXPECT_NE(SyntheticCacheFileName(a), SyntheticCacheFileName(b));
  EXPECT_NE(SyntheticCacheFileName(a), SyntheticCacheFileName(c));
  EXPECT_NE(SyntheticCacheFileName(b), SyntheticCacheFileName(c));
}

TEST(SyntheticCacheTest, MismatchedSpecFailsTheScan) {
  const SyntheticSpec spec = SmallSpec();
  const std::string dir = FreshCacheDir("syn_cache_mismatch");
  const EdgeCacheEntry entry = EnsureEdgeCache(spec, dir);

  SyntheticSpec other = spec;
  other.seed += 1;
  EXPECT_THROW(ForEachCachedEdge(entry.path, other, [](VertexId, VertexId) {}),
               std::runtime_error);
}

TEST(ScaledShapeSpecTest, PreservesDensityAndScalesEdgesLinearly) {
  // BX's Table 2 shape scaled to 4x the edges: vertices scale by 2, so
  // density m / (|U| |L|) is preserved.
  const SyntheticSpec spec =
      ScaledShapeSpec(105300, 340500, 1100000, 4400000, 2.1, 7);
  EXPECT_EQ(spec.num_edges, 4400000u);
  EXPECT_NEAR(static_cast<double>(spec.num_upper), 2.0 * 105300, 2.0);
  EXPECT_NEAR(static_cast<double>(spec.num_lower), 2.0 * 340500, 2.0);
  const double base_density = 1100000.0 / (105300.0 * 340500.0);
  const double scaled_density =
      static_cast<double>(spec.num_edges) /
      (static_cast<double>(spec.num_upper) * spec.num_lower);
  EXPECT_NEAR(scaled_density / base_density, 1.0, 0.01);
}

TEST(ScaledShapeSpecTest, TinyTargetsKeepNonDegenerateLayers) {
  const SyntheticSpec spec = ScaledShapeSpec(100000, 300000, 1000000, 10);
  EXPECT_GE(spec.num_upper, 2u);
  EXPECT_GE(spec.num_lower, 2u);
  EXPECT_EQ(spec.num_edges, 10u);
}

TEST(BuildSyntheticGraphTest, DeterministicAcrossCacheStates) {
  // Build once (cache miss), again (cache hit), and once in a second
  // cache directory (fresh generation): all three graphs are identical.
  const SyntheticSpec spec = SmallSpec();
  const std::string dir1 = FreshCacheDir("syn_build_1");
  const std::string dir2 = FreshCacheDir("syn_build_2");

  EdgeCacheEntry e1, e2, e3;
  const BipartiteGraph g1 = BuildSyntheticGraph(spec, dir1, &e1);
  const BipartiteGraph g2 = BuildSyntheticGraph(spec, dir1, &e2);
  const BipartiteGraph g3 = BuildSyntheticGraph(spec, dir2, &e3);
  EXPECT_TRUE(e1.generated);
  EXPECT_FALSE(e2.generated);
  EXPECT_TRUE(e3.generated);
  EXPECT_EQ(g1.EdgeList(), g2.EdgeList());
  EXPECT_EQ(g1.EdgeList(), g3.EdgeList());
  EXPECT_EQ(g1.NumUpper(), spec.num_upper);
  EXPECT_EQ(g1.NumLower(), spec.num_lower);
}

}  // namespace
}  // namespace cne
