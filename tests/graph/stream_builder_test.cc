// Equivalence tests for BipartiteGraph::FromEdgeStream, the two-pass
// streamed CSR builder: it must produce byte-identical CSR arrays to the
// in-memory GraphBuilder/edge-list path on the bundled sample dataset and
// on generated graphs, including under duplicate and unsorted emissions.

#include <algorithm>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graph/bipartite_graph.h"
#include "graph/graph_builder.h"
#include "graph/graph_io.h"
#include "graph/synthetic.h"

namespace cne {
namespace {

std::string SampleDataPath() {
  const char* root = std::getenv("CNE_SOURCE_DIR");
  return std::string(root ? root : ".") + "/data/sample_userpage.txt";
}

BipartiteGraph StreamEdges(VertexId num_upper, VertexId num_lower,
                           const std::vector<Edge>& edges) {
  return BipartiteGraph::FromEdgeStream(
      num_upper, num_lower, [&](const BipartiteGraph::EdgeEmit& emit) {
        for (const Edge& e : edges) emit(e.upper, e.lower);
      });
}

// CSR arrays of both directions must match element for element — the
// strongest equivalence the class exposes (EdgeList equality follows).
void ExpectSameCsr(const BipartiteGraph& a, const BipartiteGraph& b) {
  ASSERT_EQ(a.NumUpper(), b.NumUpper());
  ASSERT_EQ(a.NumLower(), b.NumLower());
  ASSERT_EQ(a.NumEdges(), b.NumEdges());
  for (Layer layer : {Layer::kUpper, Layer::kLower}) {
    const auto ca = a.Csr(layer);
    const auto cb = b.Csr(layer);
    ASSERT_EQ(ca.offsets.size(), cb.offsets.size());
    EXPECT_TRUE(std::equal(ca.offsets.begin(), ca.offsets.end(),
                           cb.offsets.begin()))
        << "offsets differ in layer " << LayerName(layer);
    ASSERT_EQ(ca.adj.size(), cb.adj.size());
    EXPECT_TRUE(std::equal(ca.adj.begin(), ca.adj.end(), cb.adj.begin()))
        << "adjacency differs in layer " << LayerName(layer);
  }
}

TEST(FromEdgeStreamTest, MatchesFileIngestOnSampleDataset) {
  const BipartiteGraph reference = ReadEdgeListFile(SampleDataPath());
  ASSERT_GT(reference.NumEdges(), 0u);

  const BipartiteGraph streamed = BipartiteGraph::FromEdgeStream(
      reference.NumUpper(), reference.NumLower(),
      [&](const BipartiteGraph::EdgeEmit& emit) {
        for (const Edge& e : reference.EdgeList()) emit(e.upper, e.lower);
      });
  ExpectSameCsr(streamed, reference);
}

TEST(FromEdgeStreamTest, MatchesGraphBuilderOnGeneratedDraws) {
  // 1e5 Chung–Lu draws with duplicates: the streamed build must dedup to
  // exactly what GraphBuilder's sort+unique produces.
  SyntheticSpec spec;
  spec.num_upper = 2000;
  spec.num_lower = 5000;
  spec.num_edges = 100000;
  spec.seed = 11;
  const SyntheticSampler sampler(spec);

  GraphBuilder builder(spec.num_upper, spec.num_lower);
  sampler.EmitAll([&](VertexId u, VertexId l) { builder.AddEdge(u, l); });
  const BipartiteGraph reference = builder.Build();

  const BipartiteGraph streamed = BipartiteGraph::FromEdgeStream(
      spec.num_upper, spec.num_lower,
      [&](const BipartiteGraph::EdgeEmit& emit) { sampler.EmitAll(emit); });
  EXPECT_LT(streamed.NumEdges(), spec.num_edges);  // dedup happened
  ExpectSameCsr(streamed, reference);
}

TEST(FromEdgeStreamTest, UnsortedAndDuplicatedEmissions) {
  const std::vector<Edge> canonical = {
      {0, 1}, {0, 3}, {1, 0}, {2, 1}, {2, 2}, {3, 3}};
  std::vector<Edge> noisy = canonical;
  noisy.insert(noisy.end(), canonical.begin(), canonical.end());  // dup all
  noisy.push_back({2, 1});                                        // triple
  std::shuffle(noisy.begin(), noisy.end(), std::mt19937(5));

  const BipartiteGraph expected(4, 4, canonical);
  ExpectSameCsr(StreamEdges(4, 4, noisy), expected);
}

TEST(FromEdgeStreamTest, EmptyStream) {
  const BipartiteGraph g = StreamEdges(3, 4, {});
  EXPECT_EQ(g.NumUpper(), 3u);
  EXPECT_EQ(g.NumLower(), 4u);
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_EQ(g.Degree(Layer::kUpper, 2), 0u);
  EXPECT_EQ(g.Degree(Layer::kLower, 3), 0u);
}

TEST(FromEdgeStreamTest, NoVertices) {
  const BipartiteGraph g = StreamEdges(0, 0, {});
  EXPECT_EQ(g.NumEdges(), 0u);
}

TEST(FromEdgeStreamTest, SingleEdge) {
  const BipartiteGraph g = StreamEdges(2, 2, {{1, 0}});
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 0));
}

TEST(FromEdgeStreamTest, AllEmissionsDuplicateOneEdge) {
  const BipartiteGraph g =
      StreamEdges(2, 2, std::vector<Edge>(100, Edge{0, 1}));
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_EQ(g.Degree(Layer::kLower, 1), 1u);
}

TEST(FromEdgeStreamTest, AdjacencyIsSortedBothDirections) {
  const std::vector<Edge> edges = {{0, 3}, {0, 1}, {0, 2}, {1, 3},
                                   {1, 0}, {2, 3}, {2, 0}};
  const BipartiteGraph g = StreamEdges(3, 4, edges);
  for (Layer layer : {Layer::kUpper, Layer::kLower}) {
    for (VertexId v = 0; v < g.NumVertices(layer); ++v) {
      const auto n = g.Neighbors(layer, v);
      EXPECT_TRUE(std::is_sorted(n.begin(), n.end()));
      EXPECT_TRUE(std::adjacent_find(n.begin(), n.end()) == n.end());
    }
  }
}

TEST(FromEdgeStreamTest, OutOfRangeEmissionDies) {
  EXPECT_DEATH(StreamEdges(2, 2, {{2, 0}}), "");
  EXPECT_DEATH(StreamEdges(2, 2, {{0, 2}}), "");
}

TEST(FromEdgeStreamTest, NonReplayableScanDies) {
  // A scan that emits different sequences on the two passes must be
  // caught, not silently mis-built.
  int pass = 0;
  EXPECT_DEATH(BipartiteGraph::FromEdgeStream(
                   2, 2,
                   [&](const BipartiteGraph::EdgeEmit& emit) {
                     if (pass++ == 0) {
                       emit(0, 0);
                       emit(1, 1);
                     } else {
                       emit(0, 0);
                     }
                   }),
               "");
}

TEST(FromEdgeStreamTest, RoundTripsThroughEdgeList) {
  SyntheticSpec spec;
  spec.num_upper = 300;
  spec.num_lower = 400;
  spec.num_edges = 5000;
  spec.seed = 3;
  const SyntheticSampler sampler(spec);
  const BipartiteGraph g = BipartiteGraph::FromEdgeStream(
      spec.num_upper, spec.num_lower,
      [&](const BipartiteGraph::EdgeEmit& emit) { sampler.EmitAll(emit); });

  const std::vector<Edge> edges = g.EdgeList();
  EXPECT_TRUE(std::is_sorted(edges.begin(), edges.end()));
  const BipartiteGraph rebuilt(g.NumUpper(), g.NumLower(), edges);
  ExpectSameCsr(rebuilt, g);
}

}  // namespace
}  // namespace cne
