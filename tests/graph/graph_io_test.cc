#include "graph/graph_io.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "graph/graph_builder.h"

namespace cne {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

BipartiteGraph MakeFixture() {
  GraphBuilder b(3, 4);
  b.AddEdge(0, 0).AddEdge(0, 2).AddEdge(1, 1).AddEdge(2, 3);
  return b.Build();
}

TEST(GraphIoTest, ParsesZeroBasedEdgeList) {
  std::istringstream in("0 0\n0 2\n1 1\n");
  const BipartiteGraph g = ReadEdgeListStream(in);
  EXPECT_EQ(g.NumEdges(), 3u);
  EXPECT_TRUE(g.HasEdge(0, 2));
}

TEST(GraphIoTest, ParsesOneBasedEdgeList) {
  // KONECT files are typically 1-based; minimum id 1 maps to 0.
  std::istringstream in("1 1\n1 3\n2 2\n");
  const BipartiteGraph g = ReadEdgeListStream(in);
  EXPECT_EQ(g.NumEdges(), 3u);
  EXPECT_TRUE(g.HasEdge(0, 0));
  EXPECT_TRUE(g.HasEdge(0, 2));
  EXPECT_TRUE(g.HasEdge(1, 1));
}

TEST(GraphIoTest, SkipsCommentsAndBlankLines) {
  std::istringstream in(
      "% KONECT header\n"
      "# another comment\n"
      "\n"
      "   \n"
      "0 1\n");
  const BipartiteGraph g = ReadEdgeListStream(in);
  EXPECT_EQ(g.NumEdges(), 1u);
}

TEST(GraphIoTest, ThrowsOnMalformedLine) {
  std::istringstream in("0 1\nnot-an-edge\n");
  EXPECT_THROW(ReadEdgeListStream(in), std::runtime_error);
}

TEST(GraphIoTest, ThrowsOnMissingFile) {
  EXPECT_THROW(ReadEdgeListFile("/nonexistent/path/graph.txt"),
               std::runtime_error);
}

TEST(GraphIoTest, TextRoundTrip) {
  const BipartiteGraph g = MakeFixture();
  std::ostringstream out;
  WriteEdgeListStream(g, out);
  std::istringstream in(out.str());
  const BipartiteGraph g2 = ReadEdgeListStream(in);
  EXPECT_EQ(g2.NumEdges(), g.NumEdges());
  for (VertexId u = 0; u < g.NumUpper(); ++u) {
    for (VertexId l = 0; l < g.NumLower(); ++l) {
      EXPECT_EQ(g.HasEdge(u, l), g2.HasEdge(u, l));
    }
  }
}

TEST(GraphIoTest, BinaryRoundTrip) {
  const BipartiteGraph g = MakeFixture();
  const std::string path = TempPath("cne_io_test.bin");
  WriteBinaryFile(g, path);
  const BipartiteGraph g2 = ReadBinaryFile(path);
  EXPECT_EQ(g2.NumUpper(), g.NumUpper());
  EXPECT_EQ(g2.NumLower(), g.NumLower());
  EXPECT_EQ(g2.NumEdges(), g.NumEdges());
  for (const Edge& e : g.EdgeList()) EXPECT_TRUE(g2.HasEdge(e.upper, e.lower));
  std::remove(path.c_str());
}

TEST(GraphIoTest, BinaryPreservesIsolatedVertices) {
  GraphBuilder b(10, 10);
  b.AddEdge(0, 0);
  const std::string path = TempPath("cne_io_isolated.bin");
  WriteBinaryFile(b.Build(), path);
  const BipartiteGraph g = ReadBinaryFile(path);
  EXPECT_EQ(g.NumUpper(), 10u);
  EXPECT_EQ(g.NumLower(), 10u);
  std::remove(path.c_str());
}

TEST(GraphIoTest, BinaryRejectsBadMagic) {
  const std::string path = TempPath("cne_io_badmagic.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a graph file at all, just text";
  }
  EXPECT_THROW(ReadBinaryFile(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(GraphIoTest, BinaryRejectsTruncatedFile) {
  const BipartiteGraph g = MakeFixture();
  const std::string path = TempPath("cne_io_trunc.bin");
  WriteBinaryFile(g, path);
  // Truncate to half.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 2);
  EXPECT_THROW(ReadBinaryFile(path), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cne
