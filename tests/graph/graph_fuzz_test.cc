// Randomized invariant checks over generated graphs: whatever the
// generator produced, the CSR structure must satisfy the bipartite-graph
// algebra (degree sums, adjacency symmetry, intersection identities,
// round-trips).

#include <algorithm>
#include <numeric>
#include <sstream>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/graph_io.h"
#include "graph/subgraph.h"

namespace cne {
namespace {

class GraphFuzzTest : public ::testing::TestWithParam<uint64_t> {};

BipartiteGraph RandomGraph(uint64_t seed) {
  Rng rng(seed);
  const VertexId nu = 2 + static_cast<VertexId>(rng.UniformInt(60));
  const VertexId nl = 2 + static_cast<VertexId>(rng.UniformInt(60));
  const uint64_t grid = static_cast<uint64_t>(nu) * nl;
  const uint64_t m = rng.UniformInt(grid + 1);
  if (rng.Bernoulli(0.5)) {
    return ErdosRenyiBipartite(nu, nl, m, rng);
  }
  return ChungLuPowerLaw(nu, nl, std::min<uint64_t>(m, grid / 2), 2.1, rng);
}

TEST_P(GraphFuzzTest, DegreeSumsEqualEdgeCount) {
  const BipartiteGraph g = RandomGraph(GetParam());
  uint64_t upper_sum = 0, lower_sum = 0;
  for (VertexId u = 0; u < g.NumUpper(); ++u) {
    upper_sum += g.Degree(Layer::kUpper, u);
  }
  for (VertexId l = 0; l < g.NumLower(); ++l) {
    lower_sum += g.Degree(Layer::kLower, l);
  }
  EXPECT_EQ(upper_sum, g.NumEdges());
  EXPECT_EQ(lower_sum, g.NumEdges());
}

TEST_P(GraphFuzzTest, AdjacencyIsSymmetricAcrossLayers) {
  const BipartiteGraph g = RandomGraph(GetParam());
  for (VertexId u = 0; u < g.NumUpper(); ++u) {
    for (VertexId l : g.Neighbors(Layer::kUpper, u)) {
      const auto back = g.Neighbors(Layer::kLower, l);
      EXPECT_TRUE(std::binary_search(back.begin(), back.end(), u))
          << "edge (" << u << "," << l << ") missing in lower CSR";
    }
  }
}

TEST_P(GraphFuzzTest, IntersectionUnionIdentity) {
  const BipartiteGraph g = RandomGraph(GetParam());
  Rng rng(GetParam() ^ 0xabcdef);
  for (int i = 0; i < 20; ++i) {
    const VertexId a = static_cast<VertexId>(rng.UniformInt(g.NumUpper()));
    const VertexId b = static_cast<VertexId>(rng.UniformInt(g.NumUpper()));
    const uint64_t inter = g.CountCommonNeighbors(Layer::kUpper, a, b);
    const uint64_t uni = g.CountUnionNeighbors(Layer::kUpper, a, b);
    EXPECT_EQ(inter + uni, static_cast<uint64_t>(
                               g.Degree(Layer::kUpper, a)) +
                               g.Degree(Layer::kUpper, b));
    EXPECT_EQ(inter, g.CountCommonNeighbors(Layer::kUpper, b, a));
    EXPECT_LE(inter, std::min<uint64_t>(g.Degree(Layer::kUpper, a),
                                        g.Degree(Layer::kUpper, b)));
  }
}

TEST_P(GraphFuzzTest, TextRoundTripPreservesAdjacency) {
  const BipartiteGraph g = RandomGraph(GetParam());
  if (g.NumEdges() == 0) return;  // empty files lose layer sizes by design
  std::ostringstream out;
  WriteEdgeListStream(g, out);
  std::istringstream in(out.str());
  const BipartiteGraph g2 = ReadEdgeListStream(in);
  EXPECT_EQ(g2.NumEdges(), g.NumEdges());
  for (const Edge& e : g.EdgeList()) {
    EXPECT_TRUE(g2.HasEdge(e.upper, e.lower));
  }
}

TEST_P(GraphFuzzTest, InducedSubgraphNeverInventsEdges) {
  const BipartiteGraph g = RandomGraph(GetParam());
  Rng rng(GetParam() + 17);
  const BipartiteGraph sub = InducedSubgraphByVertexFraction(g, 0.5, rng);
  EXPECT_LE(sub.NumEdges(), g.NumEdges());
  uint64_t degree_sum = 0;
  for (VertexId u = 0; u < sub.NumUpper(); ++u) {
    degree_sum += sub.Degree(Layer::kUpper, u);
  }
  EXPECT_EQ(degree_sum, sub.NumEdges());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphFuzzTest,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace cne
