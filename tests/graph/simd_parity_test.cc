// SIMD/scalar parity for the word-level set kernels: every vector
// implementation must be bit-identical to the scalar reference at every
// ISA level this machine can execute, across a density grid, fuzzed
// operands, and the ragged-tail domains (domain % 64, % 256, % 512 != 0)
// where the AVX2 scalar epilogue and the AVX-512 masked loads do their
// work. ForceSimdLevel drives the same override CI exercises externally
// via CNE_SIMD_LEVEL.

#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "graph/set_ops.h"
#include "graph/set_ops_kernels.h"
#include "util/cpu_features.h"
#include "util/rng.h"

namespace cne {
namespace {

class SimdParityTest : public ::testing::Test {
 protected:
  void TearDown() override { ForceSimdLevel(DetectedSimdLevel()); }
};

DenseBitset RandomBitset(VertexId domain, double density, Rng& rng) {
  DenseBitset bits(domain);
  for (VertexId v = 0; v < domain; ++v) {
    if (rng.NextDouble() < density) bits.Set(v);
  }
  return bits;
}

// The domains the vector kernels must get right: multiples of the AVX2
// (256-bit) and AVX-512 (512-bit) strides, one word, and off-by-one
// raggedness around every stride boundary.
const VertexId kParityDomains[] = {1,   63,  64,  65,   255,  256, 257,
                                   511, 512, 513, 1000, 1024, 2048, 4096 + 37};

TEST_F(SimdParityTest, WordKernelsMatchScalarOnDensityGrid) {
  Rng rng(20240807);
  const simd::WordKernels& scalar = simd::WordKernelsFor(SimdLevel::kScalar);
  for (VertexId domain : kParityDomains) {
    for (double density : {0.0, 0.001, 0.01, 0.1, 0.5, 1.0}) {
      const DenseBitset a = RandomBitset(domain, density, rng);
      const DenseBitset b = RandomBitset(domain, density, rng);
      const size_t n = a.Words().size();
      const uint64_t want_and =
          scalar.and_popcount(a.Words().data(), b.Words().data(), n);
      const uint64_t want_or =
          scalar.or_popcount(a.Words().data(), b.Words().data(), n);
      const uint64_t want_pop = scalar.popcount(a.Words().data(), n);
      for (SimdLevel level : AvailableSimdLevels()) {
        const simd::WordKernels& kernels = simd::WordKernelsFor(level);
        EXPECT_EQ(kernels.and_popcount(a.Words().data(), b.Words().data(), n),
                  want_and)
            << SimdLevelName(level) << " domain " << domain << " density "
            << density;
        EXPECT_EQ(kernels.or_popcount(a.Words().data(), b.Words().data(), n),
                  want_or)
            << SimdLevelName(level) << " domain " << domain;
        EXPECT_EQ(kernels.popcount(a.Words().data(), n), want_pop)
            << SimdLevelName(level) << " domain " << domain;
      }
    }
  }
}

TEST_F(SimdParityTest, PublicKernelsMatchSortedReferenceAtEveryLevel) {
  Rng rng(31);
  for (VertexId domain : kParityDomains) {
    const DenseBitset a = RandomBitset(domain, 0.3, rng);
    const DenseBitset b = RandomBitset(domain, 0.05, rng);
    const std::vector<VertexId> sa = a.ToSortedVector();
    const std::vector<VertexId> sb = b.ToSortedVector();
    const uint64_t want_and = IntersectScalarMerge(sa, sb);
    const uint64_t want_or = UnionScalarMerge(sa, sb);
    for (SimdLevel level : AvailableSimdLevels()) {
      ForceSimdLevel(level);
      EXPECT_EQ(IntersectBitmapAnd(a, b), want_and)
          << SimdLevelName(level) << " domain " << domain;
      EXPECT_EQ(IntersectBitmapProbe(b, a), want_and)
          << SimdLevelName(level) << " domain " << domain;
      EXPECT_EQ(UnionBitmapOr(a, b), want_or)
          << SimdLevelName(level) << " domain " << domain;
      EXPECT_EQ(a.Count(), sa.size()) << SimdLevelName(level);
      EXPECT_EQ(
          IntersectionSize(SetView::Bitmap(a, sa.size()),
                           SetView::Bitmap(b, sb.size())),
          want_and)
          << SimdLevelName(level) << " domain " << domain;
    }
  }
}

TEST_F(SimdParityTest, FuzzedOperandsAgreeAcrossLevels) {
  Rng rng(77);
  for (int round = 0; round < 200; ++round) {
    // Mixed domains too: bitmap_and over different word counts must
    // truncate identically at every level.
    const VertexId domain_a = 1 + static_cast<VertexId>(rng.NextDouble() * 2048);
    const VertexId domain_b = 1 + static_cast<VertexId>(rng.NextDouble() * 2048);
    const DenseBitset a = RandomBitset(domain_a, rng.NextDouble(), rng);
    const DenseBitset b = RandomBitset(domain_b, rng.NextDouble(), rng);
    const uint64_t want = IntersectScalarMerge(a.ToSortedVector(),
                                               b.ToSortedVector());
    for (SimdLevel level : AvailableSimdLevels()) {
      ForceSimdLevel(level);
      EXPECT_EQ(IntersectBitmapAnd(a, b), want)
          << SimdLevelName(level) << " round " << round;
      EXPECT_EQ(IntersectBitmapAnd(b, a), want)
          << SimdLevelName(level) << " round " << round;
    }
  }
}

TEST_F(SimdParityTest, BatchIntersectionMatchesPerPairAtEveryLevel) {
  Rng rng(13);
  const VertexId domain = 777;  // ragged at every stride
  const DenseBitset base_bits = RandomBitset(domain, 0.4, rng);
  const std::vector<VertexId> base_ids = base_bits.ToSortedVector();

  std::vector<DenseBitset> cand_bits;
  std::vector<std::vector<VertexId>> cand_ids;
  for (int i = 0; i < 24; ++i) {
    cand_bits.push_back(RandomBitset(domain, 0.02 * i, rng));
    cand_ids.push_back(cand_bits.back().ToSortedVector());
  }
  std::vector<SetView> candidates;
  for (int i = 0; i < 24; ++i) {
    // Alternate representations so the batch loop crosses kernels.
    candidates.push_back(i % 2 == 0
                             ? SetView::Bitmap(cand_bits[i], cand_ids[i].size())
                             : SetView::Sorted(cand_ids[i]));
  }

  std::vector<uint64_t> want(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    want[i] = IntersectScalarMerge(base_ids, cand_ids[i]);
  }

  for (SimdLevel level : AvailableSimdLevels()) {
    ForceSimdLevel(level);
    for (const SetView& base : {SetView::Bitmap(base_bits, base_ids.size()),
                                SetView::Sorted(base_ids)}) {
      std::vector<uint64_t> got(candidates.size(), ~uint64_t{0});
      BatchIntersectionSize(base, candidates, got);
      EXPECT_EQ(got, want) << SimdLevelName(level)
                           << (base.IsBitmap() ? " bitmap base"
                                               : " sorted base");
    }
  }
}

TEST_F(SimdParityTest, AllOnesAndAlternatingPatternsCountExactly) {
  // Deterministic worst cases for the byte-LUT and mask arithmetic:
  // saturated words and alternating nibbles, at ragged domains.
  for (VertexId domain : kParityDomains) {
    DenseBitset ones(domain);
    DenseBitset evens(domain);
    for (VertexId v = 0; v < domain; ++v) {
      ones.Set(v);
      if (v % 2 == 0) evens.Set(v);
    }
    for (SimdLevel level : AvailableSimdLevels()) {
      ForceSimdLevel(level);
      EXPECT_EQ(ones.Count(), domain) << SimdLevelName(level);
      EXPECT_EQ(evens.Count(), (domain + 1) / 2) << SimdLevelName(level);
      EXPECT_EQ(IntersectBitmapAnd(ones, evens), (domain + 1) / 2)
          << SimdLevelName(level);
      EXPECT_EQ(UnionBitmapOr(ones, evens), domain) << SimdLevelName(level);
    }
  }
}

}  // namespace
}  // namespace cne
