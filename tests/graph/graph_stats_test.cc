#include "graph/graph_stats.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/graph_builder.h"

namespace cne {
namespace {

BipartiteGraph MakeFixture() {
  // Degrees upper: 3, 1, 0; lower: 2, 1, 1, 0.
  GraphBuilder b(3, 4);
  b.AddEdge(0, 0).AddEdge(0, 1).AddEdge(0, 2).AddEdge(1, 0);
  return b.Build();
}

TEST(DegreeHistogramTest, CountsPerDegree) {
  const BipartiteGraph g = MakeFixture();
  const auto upper = DegreeHistogram(g, Layer::kUpper);
  ASSERT_EQ(upper.size(), 4u);  // max degree 3
  EXPECT_EQ(upper[0], 1u);
  EXPECT_EQ(upper[1], 1u);
  EXPECT_EQ(upper[2], 0u);
  EXPECT_EQ(upper[3], 1u);
  const auto lower = DegreeHistogram(g, Layer::kLower);
  ASSERT_EQ(lower.size(), 3u);
  EXPECT_EQ(lower[0], 1u);
  EXPECT_EQ(lower[1], 2u);
  EXPECT_EQ(lower[2], 1u);
}

TEST(LayerDegreeStatsTest, Fixture) {
  const BipartiteGraph g = MakeFixture();
  const LayerDegreeStats s = ComputeLayerDegreeStats(g, Layer::kUpper);
  EXPECT_EQ(s.num_vertices, 3u);
  EXPECT_EQ(s.max_degree, 3u);
  EXPECT_DOUBLE_EQ(s.average_degree, 4.0 / 3.0);
  EXPECT_EQ(s.isolated, 1u);
}

TEST(LayerDegreeStatsTest, EmptyLayer) {
  const BipartiteGraph g;
  const LayerDegreeStats s = ComputeLayerDegreeStats(g, Layer::kUpper);
  EXPECT_EQ(s.num_vertices, 0u);
  EXPECT_EQ(s.max_degree, 0u);
}

TEST(GraphStatsTest, DensityAndEdges) {
  const BipartiteGraph g = MakeFixture();
  const GraphStats s = ComputeGraphStats(g);
  EXPECT_EQ(s.num_edges, 4u);
  EXPECT_DOUBLE_EQ(s.density, 4.0 / 12.0);
}

TEST(GraphStatsTest, ToStringContainsKeyFields) {
  const GraphStats s = ComputeGraphStats(MakeFixture());
  const std::string str = ToString(s);
  EXPECT_NE(str.find("|U|=3"), std::string::npos);
  EXPECT_NE(str.find("m=4"), std::string::npos);
}

TEST(GraphStatsTest, MedianDegree) {
  const BipartiteGraph g = CompleteBipartite(4, 5);
  const LayerDegreeStats s = ComputeLayerDegreeStats(g, Layer::kUpper);
  EXPECT_DOUBLE_EQ(s.median_degree, 5.0);
}

}  // namespace
}  // namespace cne
