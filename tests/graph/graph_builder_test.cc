#include "graph/graph_builder.h"

#include <gtest/gtest.h>

namespace cne {
namespace {

TEST(GraphBuilderTest, DeduplicatesEdges) {
  GraphBuilder b(2, 2);
  b.AddEdge(0, 0).AddEdge(0, 0).AddEdge(0, 0).AddEdge(1, 1);
  EXPECT_EQ(b.PendingEdges(), 4u);
  const BipartiteGraph g = b.Build();
  EXPECT_EQ(g.NumEdges(), 2u);
}

TEST(GraphBuilderTest, HandlesUnsortedInput) {
  GraphBuilder b(3, 3);
  b.AddEdge(2, 1).AddEdge(0, 2).AddEdge(1, 0).AddEdge(0, 1);
  const BipartiteGraph g = b.Build();
  EXPECT_EQ(g.NumEdges(), 4u);
  const auto nb = g.Neighbors(Layer::kUpper, 0);
  ASSERT_EQ(nb.size(), 2u);
  EXPECT_EQ(nb[0], 1u);
  EXPECT_EQ(nb[1], 2u);
}

TEST(GraphBuilderTest, AutoGrowsLayerSizes) {
  GraphBuilder b;
  b.AddEdge(5, 10);
  const BipartiteGraph g = b.Build();
  EXPECT_EQ(g.NumUpper(), 6u);
  EXPECT_EQ(g.NumLower(), 11u);
  EXPECT_EQ(g.NumEdges(), 1u);
}

TEST(GraphBuilderTest, ReusableAfterBuild) {
  GraphBuilder b(2, 2);
  b.AddEdge(0, 0);
  const BipartiteGraph g1 = b.Build();
  EXPECT_EQ(g1.NumEdges(), 1u);
  b.AddEdge(1, 1);
  const BipartiteGraph g2 = b.Build();
  EXPECT_EQ(g2.NumEdges(), 1u);
  EXPECT_TRUE(g2.HasEdge(1, 1));
  EXPECT_FALSE(g2.HasEdge(0, 0));
}

TEST(GraphBuilderTest, AddEdgesBatch) {
  GraphBuilder b(3, 3);
  b.AddEdges({{0, 0}, {1, 1}, {2, 2}});
  EXPECT_EQ(b.Build().NumEdges(), 3u);
}

TEST(GraphBuilderTest, EmptyBuild) {
  GraphBuilder b(4, 4);
  const BipartiteGraph g = b.Build();
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_EQ(g.NumUpper(), 4u);
}

TEST(GraphBuilderDeathTest, RejectsOutOfRangeOnFixedLayers) {
  GraphBuilder b(2, 2);
  EXPECT_DEATH(b.AddEdge(2, 0), "outside fixed layers");
  EXPECT_DEATH(b.AddEdge(0, 5), "outside fixed layers");
}

}  // namespace
}  // namespace cne
