#include "graph/bipartite_graph.h"

#include <vector>

#include <gtest/gtest.h>

#include "graph/graph_builder.h"

namespace cne {
namespace {

// Fixture graph:
//   u0 - {l0, l1, l2}
//   u1 - {l1, l2, l3}
//   u2 - {l3}
BipartiteGraph MakeFixture() {
  GraphBuilder b(3, 4);
  b.AddEdge(0, 0).AddEdge(0, 1).AddEdge(0, 2);
  b.AddEdge(1, 1).AddEdge(1, 2).AddEdge(1, 3);
  b.AddEdge(2, 3);
  return b.Build();
}

TEST(BipartiteGraphTest, EmptyGraph) {
  BipartiteGraph g;
  EXPECT_EQ(g.NumUpper(), 0u);
  EXPECT_EQ(g.NumLower(), 0u);
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_EQ(g.TotalVertices(), 0u);
}

TEST(BipartiteGraphTest, Counts) {
  const BipartiteGraph g = MakeFixture();
  EXPECT_EQ(g.NumUpper(), 3u);
  EXPECT_EQ(g.NumLower(), 4u);
  EXPECT_EQ(g.NumEdges(), 7u);
  EXPECT_EQ(g.TotalVertices(), 7u);
  EXPECT_EQ(g.NumVertices(Layer::kUpper), 3u);
  EXPECT_EQ(g.NumVertices(Layer::kLower), 4u);
}

TEST(BipartiteGraphTest, NeighborsSortedBothDirections) {
  const BipartiteGraph g = MakeFixture();
  const auto nb_u0 = g.Neighbors(Layer::kUpper, 0);
  ASSERT_EQ(nb_u0.size(), 3u);
  EXPECT_EQ(nb_u0[0], 0u);
  EXPECT_EQ(nb_u0[1], 1u);
  EXPECT_EQ(nb_u0[2], 2u);

  const auto nb_l1 = g.Neighbors(Layer::kLower, 1);
  ASSERT_EQ(nb_l1.size(), 2u);
  EXPECT_EQ(nb_l1[0], 0u);
  EXPECT_EQ(nb_l1[1], 1u);

  const auto nb_l3 = g.Neighbors(Layer::kLower, 3);
  ASSERT_EQ(nb_l3.size(), 2u);
  EXPECT_EQ(nb_l3[0], 1u);
  EXPECT_EQ(nb_l3[1], 2u);
}

TEST(BipartiteGraphTest, LayeredVertexOverloads) {
  const BipartiteGraph g = MakeFixture();
  const LayeredVertex v{Layer::kUpper, 1};
  EXPECT_EQ(g.Neighbors(v).size(), 3u);
  EXPECT_EQ(g.Degree(v), 3u);
}

TEST(BipartiteGraphTest, Degrees) {
  const BipartiteGraph g = MakeFixture();
  EXPECT_EQ(g.Degree(Layer::kUpper, 0), 3u);
  EXPECT_EQ(g.Degree(Layer::kUpper, 2), 1u);
  EXPECT_EQ(g.Degree(Layer::kLower, 0), 1u);
  EXPECT_EQ(g.Degree(Layer::kLower, 3), 2u);
}

TEST(BipartiteGraphTest, HasEdge) {
  const BipartiteGraph g = MakeFixture();
  EXPECT_TRUE(g.HasEdge(0, 0));
  EXPECT_TRUE(g.HasEdge(2, 3));
  EXPECT_FALSE(g.HasEdge(0, 3));
  EXPECT_FALSE(g.HasEdge(2, 0));
}

TEST(BipartiteGraphTest, CommonNeighborsUpperLayer) {
  const BipartiteGraph g = MakeFixture();
  // u0 and u1 share l1, l2.
  EXPECT_EQ(g.CountCommonNeighbors(Layer::kUpper, 0, 1), 2u);
  // u0 and u2 share nothing.
  EXPECT_EQ(g.CountCommonNeighbors(Layer::kUpper, 0, 2), 0u);
  // u1 and u2 share l3.
  EXPECT_EQ(g.CountCommonNeighbors(Layer::kUpper, 1, 2), 1u);
}

TEST(BipartiteGraphTest, CommonNeighborsLowerLayer) {
  const BipartiteGraph g = MakeFixture();
  // l1 and l2 both see u0 and u1.
  EXPECT_EQ(g.CountCommonNeighbors(Layer::kLower, 1, 2), 2u);
  // l0 and l3 share nothing.
  EXPECT_EQ(g.CountCommonNeighbors(Layer::kLower, 0, 3), 0u);
}

TEST(BipartiteGraphTest, CommonNeighborsSelfPair) {
  const BipartiteGraph g = MakeFixture();
  EXPECT_EQ(g.CountCommonNeighbors(Layer::kUpper, 0, 0), 3u);
}

TEST(BipartiteGraphTest, UnionNeighbors) {
  const BipartiteGraph g = MakeFixture();
  EXPECT_EQ(g.CountUnionNeighbors(Layer::kUpper, 0, 1), 4u);
  EXPECT_EQ(g.CountUnionNeighbors(Layer::kUpper, 0, 2), 4u);
}

TEST(BipartiteGraphTest, MaxAndAverageDegree) {
  const BipartiteGraph g = MakeFixture();
  EXPECT_EQ(g.MaxDegree(Layer::kUpper), 3u);
  EXPECT_EQ(g.MaxDegree(Layer::kLower), 2u);
  EXPECT_DOUBLE_EQ(g.AverageDegree(Layer::kUpper), 7.0 / 3.0);
  EXPECT_DOUBLE_EQ(g.AverageDegree(Layer::kLower), 7.0 / 4.0);
}

TEST(BipartiteGraphTest, EdgeListRoundTrip) {
  const BipartiteGraph g = MakeFixture();
  const std::vector<Edge> edges = g.EdgeList();
  ASSERT_EQ(edges.size(), 7u);
  const BipartiteGraph g2(g.NumUpper(), g.NumLower(), edges);
  EXPECT_EQ(g2.NumEdges(), g.NumEdges());
  for (VertexId u = 0; u < g.NumUpper(); ++u) {
    for (VertexId l = 0; l < g.NumLower(); ++l) {
      EXPECT_EQ(g.HasEdge(u, l), g2.HasEdge(u, l));
    }
  }
}

TEST(BipartiteGraphTest, IsolatedVertices) {
  GraphBuilder b(5, 5);
  b.AddEdge(0, 0);
  const BipartiteGraph g = b.Build();
  EXPECT_EQ(g.Degree(Layer::kUpper, 4), 0u);
  EXPECT_TRUE(g.Neighbors(Layer::kUpper, 4).empty());
  EXPECT_EQ(g.CountCommonNeighbors(Layer::kUpper, 3, 4), 0u);
}

TEST(BipartiteGraphTest, ToStringMentionsSizes) {
  const BipartiteGraph g = MakeFixture();
  const std::string s = g.ToString();
  EXPECT_NE(s.find("|U|=3"), std::string::npos);
  EXPECT_NE(s.find("|L|=4"), std::string::npos);
  EXPECT_NE(s.find("m=7"), std::string::npos);
}

TEST(BipartiteGraphTest, MemoryBytesPositive) {
  EXPECT_GT(MakeFixture().MemoryBytes(), 0u);
}

TEST(SortedSetOpsTest, IntersectionBasics) {
  const std::vector<VertexId> a = {1, 3, 5, 7};
  const std::vector<VertexId> b = {2, 3, 4, 7, 9};
  EXPECT_EQ(SortedIntersectionSize(a, b), 2u);
  EXPECT_EQ(SortedIntersectionSize(a, {}), 0u);
  EXPECT_EQ(SortedIntersectionSize({}, {}), 0u);
  EXPECT_EQ(SortedIntersectionSize(a, a), 4u);
}

TEST(SortedSetOpsTest, GallopingPathMatchesMergePath) {
  // Large size imbalance triggers the galloping branch.
  std::vector<VertexId> small = {10, 500, 900, 1500};
  std::vector<VertexId> big;
  for (VertexId i = 0; i < 2000; i += 2) big.push_back(i);  // evens
  // Intersection: 10, 500, 900 are even and present; 1500 present.
  EXPECT_EQ(SortedIntersectionSize(small, big), 4u);
  small = {11, 501, 901, 1501};  // odds absent
  EXPECT_EQ(SortedIntersectionSize(small, big), 0u);
}

TEST(SortedSetOpsTest, UnionBasics) {
  const std::vector<VertexId> a = {1, 2, 3};
  const std::vector<VertexId> b = {3, 4};
  EXPECT_EQ(SortedUnionSize(a, b), 4u);
  EXPECT_EQ(SortedUnionSize(a, {}), 3u);
}

}  // namespace
}  // namespace cne
