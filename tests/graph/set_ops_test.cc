// Property suite for the adaptive intersection kernels: every kernel and
// the dispatcher must return exactly the scalar merge's count on the same
// set pair, for every representation, across the full density range and
// across skewed size ratios — including domains that are not multiples of
// the 64-bit word size.

#include "graph/set_ops.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace cne {
namespace {

std::vector<VertexId> RandomSortedSet(VertexId domain, double density,
                                      Rng& rng) {
  std::vector<VertexId> out;
  for (VertexId v = 0; v < domain; ++v) {
    if (rng.Bernoulli(density)) out.push_back(v);
  }
  return out;
}

DenseBitset ToBitset(const std::vector<VertexId>& sorted, VertexId domain) {
  DenseBitset bits(domain);
  for (VertexId v : sorted) bits.Set(v);
  return bits;
}

uint64_t ReferenceIntersection(const std::vector<VertexId>& a,
                               const std::vector<VertexId>& b) {
  std::vector<VertexId> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out.size();
}

TEST(DenseBitsetTest, SetTestCountRoundTrip) {
  DenseBitset bits(130);  // not a multiple of 64
  EXPECT_EQ(bits.NumBits(), 130u);
  EXPECT_EQ(bits.Count(), 0u);
  for (VertexId v : {0u, 63u, 64u, 127u, 128u, 129u}) bits.Set(v);
  EXPECT_EQ(bits.Count(), 6u);
  EXPECT_TRUE(bits.Test(0));
  EXPECT_TRUE(bits.Test(129));
  EXPECT_FALSE(bits.Test(1));
  EXPECT_FALSE(bits.Test(126));
  EXPECT_EQ(bits.ToSortedVector(),
            (std::vector<VertexId>{0, 63, 64, 127, 128, 129}));
}

TEST(DenseBitsetTest, ToSortedVectorIsAscendingOnRandomInput) {
  Rng rng(3);
  DenseBitset bits(777);
  std::vector<VertexId> truth;
  for (VertexId v = 0; v < 777; ++v) {
    if (rng.Bernoulli(0.3)) {
      bits.Set(v);
      truth.push_back(v);
    }
  }
  EXPECT_EQ(bits.ToSortedVector(), truth);
}

TEST(SetOpsKernelsTest, AllKernelsAgreeAcrossDensityGrid) {
  Rng rng(17);
  // Domains straddle word boundaries on purpose.
  for (VertexId domain : {VertexId{1}, VertexId{63}, VertexId{64},
                          VertexId{65}, VertexId{100}, VertexId{1000},
                          VertexId{4097}}) {
    for (double da : {0.0, 0.01, 0.1, 0.3, 0.7, 1.0}) {
      for (double db : {0.0, 0.05, 0.5, 1.0}) {
        const auto a = RandomSortedSet(domain, da, rng);
        const auto b = RandomSortedSet(domain, db, rng);
        const DenseBitset ba = ToBitset(a, domain);
        const DenseBitset bb = ToBitset(b, domain);
        const uint64_t want = ReferenceIntersection(a, b);

        EXPECT_EQ(IntersectScalarMerge(a, b), want);
        EXPECT_EQ(IntersectGalloping(a, b), want);
        EXPECT_EQ(IntersectGalloping(b, a), want);
        EXPECT_EQ(IntersectBitmapAnd(ba, bb), want);
        EXPECT_EQ(IntersectProbeBitmap(a, bb), want);
        EXPECT_EQ(IntersectProbeBitmap(b, ba), want);

        // Dispatcher, every representation pairing.
        const SetView sa = SetView::Sorted(a);
        const SetView sb = SetView::Sorted(b);
        const SetView va = SetView::Bitmap(ba, a.size());
        const SetView vb = SetView::Bitmap(bb, b.size());
        for (const SetView& x : {sa, va}) {
          for (const SetView& y : {sb, vb}) {
            EXPECT_EQ(IntersectionSize(x, y), want)
                << domain << " " << da << "x" << db << " "
                << DispatchedKernelName(x, y);
          }
        }
      }
    }
  }
}

TEST(SetOpsKernelsTest, FuzzRandomPairs) {
  Rng rng(29);
  for (int t = 0; t < 300; ++t) {
    const VertexId domain =
        static_cast<VertexId>(1 + rng.UniformInt(2000));
    const double da = rng.NextDouble();
    const double db = rng.NextDouble() * rng.NextDouble();  // skew sizes
    const auto a = RandomSortedSet(domain, da, rng);
    const auto b = RandomSortedSet(domain, db, rng);
    const DenseBitset ba = ToBitset(a, domain);
    const DenseBitset bb = ToBitset(b, domain);
    const uint64_t want = ReferenceIntersection(a, b);
    EXPECT_EQ(IntersectScalarMerge(a, b), want);
    EXPECT_EQ(IntersectGalloping(a, b), want);
    EXPECT_EQ(IntersectBitmapAnd(ba, bb), want);
    EXPECT_EQ(IntersectProbeBitmap(a, bb), want);
    EXPECT_EQ(
        IntersectionSize(SetView::Sorted(a), SetView::Bitmap(bb, b.size())),
        want);
    EXPECT_EQ(IntersectionSize(SetView::Bitmap(ba, a.size()),
                               SetView::Bitmap(bb, b.size())),
              want);
  }
}

TEST(SetOpsKernelsTest, GallopingHandlesExtremeSkew) {
  // One needle against a huge haystack, hit and miss, ends included.
  std::vector<VertexId> big;
  for (VertexId v = 0; v < 100000; v += 2) big.push_back(v);
  EXPECT_EQ(IntersectGalloping(std::vector<VertexId>{0}, big), 1u);
  EXPECT_EQ(IntersectGalloping(std::vector<VertexId>{99998}, big), 1u);
  EXPECT_EQ(IntersectGalloping(std::vector<VertexId>{99999}, big), 0u);
  EXPECT_EQ(IntersectGalloping(std::vector<VertexId>{1}, big), 0u);
  const std::vector<VertexId> needles = {0, 1, 50000, 50001, 99998};
  EXPECT_EQ(IntersectGalloping(needles, big), 3u);
  EXPECT_EQ(IntersectScalarMerge(needles, big), 3u);
}

TEST(SetOpsKernelsTest, BitmapAndToleratesDomainMismatch) {
  // Bits past the shorter domain cannot intersect.
  DenseBitset a(130), b(70);
  for (VertexId v : {0u, 64u, 69u, 129u}) a.Set(v);
  for (VertexId v : {0u, 64u, 69u}) b.Set(v);
  EXPECT_EQ(IntersectBitmapAnd(a, b), 3u);
  EXPECT_EQ(IntersectBitmapAnd(b, a), 3u);
}

TEST(SetOpsKernelsTest, ProbeIgnoresOutOfDomainIds) {
  DenseBitset bits(65);
  bits.Set(64);
  const std::vector<VertexId> probes = {10, 64, 100, 4000000000u};
  EXPECT_EQ(IntersectProbeBitmap(probes, bits), 1u);
}

TEST(SetOpsUnionTest, AllUnionKernelsAgreeAcrossDensityGrid) {
  Rng rng(41);
  for (VertexId domain : {VertexId{1}, VertexId{63}, VertexId{64},
                          VertexId{65}, VertexId{100}, VertexId{1000}}) {
    for (double da : {0.0, 0.01, 0.1, 0.5, 1.0}) {
      for (double db : {0.0, 0.05, 0.7, 1.0}) {
        const auto a = RandomSortedSet(domain, da, rng);
        const auto b = RandomSortedSet(domain, db, rng);
        const DenseBitset ba = ToBitset(a, domain);
        const DenseBitset bb = ToBitset(b, domain);
        std::vector<VertexId> ref;
        std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                       std::back_inserter(ref));
        const uint64_t want = ref.size();

        EXPECT_EQ(UnionScalarMerge(a, b), want);
        EXPECT_EQ(UnionScalarMerge(b, a), want);
        EXPECT_EQ(UnionBitmapOr(ba, bb), want);
        EXPECT_EQ(UnionBitmapOr(bb, ba), want);

        const SetView sa = SetView::Sorted(a);
        const SetView sb = SetView::Sorted(b);
        const SetView va = SetView::Bitmap(ba, a.size());
        const SetView vb = SetView::Bitmap(bb, b.size());
        for (const SetView& x : {sa, va}) {
          for (const SetView& y : {sb, vb}) {
            EXPECT_EQ(UnionSize(x, y), want)
                << domain << " " << da << "x" << db << " "
                << DispatchedUnionKernelName(x, y);
          }
        }
      }
    }
  }
}

TEST(SetOpsUnionTest, BitmapOrHandlesDomainMismatch) {
  // The longer operand's tail bits belong to the union.
  DenseBitset a(130), b(70);
  for (VertexId v : {0u, 64u, 129u}) a.Set(v);
  for (VertexId v : {0u, 69u}) b.Set(v);
  EXPECT_EQ(UnionBitmapOr(a, b), 4u);
  EXPECT_EQ(UnionBitmapOr(b, a), 4u);
}

TEST(SetOpsUnionTest, PicksTheExpectedKernel) {
  std::vector<VertexId> small = {1, 2, 3};
  std::vector<VertexId> large(400);
  for (VertexId v = 0; v < 400; ++v) large[v] = v;
  DenseBitset bits(400);
  bits.Set(1);

  const SetView s = SetView::Sorted(small);
  const SetView l = SetView::Sorted(large);
  const SetView b = SetView::Bitmap(bits, 1);
  EXPECT_STREQ(DispatchedUnionKernelName(s, l), "gallop_complement");
  EXPECT_STREQ(DispatchedUnionKernelName(s, s), "scalar_merge");
  EXPECT_STREQ(DispatchedUnionKernelName(s, b), "probe_complement");
  EXPECT_STREQ(DispatchedUnionKernelName(b, b), "bitmap_or");
}

TEST(BatchIntersectionTest, MatchesPerPairDispatcherAcrossRepresentations) {
  Rng rng(53);
  for (VertexId domain : {VertexId{65}, VertexId{300}, VertexId{1000}}) {
    for (double base_density : {0.02, 0.4}) {
      const auto base_ids = RandomSortedSet(domain, base_density, rng);
      const DenseBitset base_bits = ToBitset(base_ids, domain);
      // A mixed bag of candidates: sparse sorted, dense sorted, bitmaps.
      std::vector<std::vector<VertexId>> cand_ids;
      std::vector<DenseBitset> cand_bits;
      for (double d : {0.0, 0.01, 0.2, 0.9}) {
        cand_ids.push_back(RandomSortedSet(domain, d, rng));
        cand_bits.push_back(ToBitset(cand_ids.back(), domain));
      }
      std::vector<SetView> candidates;
      for (size_t i = 0; i < cand_ids.size(); ++i) {
        candidates.push_back(SetView::Sorted(cand_ids[i]));
        candidates.push_back(
            SetView::Bitmap(cand_bits[i], cand_ids[i].size()));
      }
      for (const SetView& base :
           {SetView::Sorted(base_ids),
            SetView::Bitmap(base_bits, base_ids.size())}) {
        std::vector<uint64_t> got(candidates.size(), ~uint64_t{0});
        BatchIntersectionSize(base, candidates, got);
        for (size_t i = 0; i < candidates.size(); ++i) {
          EXPECT_EQ(got[i], IntersectionSize(base, candidates[i]))
              << domain << " candidate " << i;
        }
      }
    }
  }
}

TEST(BatchIntersectionTest, EmptyCandidateListIsANoOp) {
  const std::vector<VertexId> ids = {1, 2, 3};
  BatchIntersectionSize(SetView::Sorted(ids), {}, {});
}

TEST(SetOpsDispatchTest, PicksTheExpectedKernel) {
  std::vector<VertexId> small = {1, 2, 3};
  std::vector<VertexId> large(400);
  for (VertexId v = 0; v < 400; ++v) large[v] = v;
  DenseBitset sparse_bits(400);
  sparse_bits.Set(1);
  // A genuinely dense pair: every bit over a multi-thousand-word domain,
  // so the skip-zero probe has no zero words to skip and the calibrated
  // chooser must price the straight vector AND cheaper.
  constexpr VertexId kDenseDomain = 1 << 18;
  DenseBitset dense_bits(kDenseDomain);
  for (VertexId v = 0; v < kDenseDomain; ++v) dense_bits.Set(v);

  const SetView s = SetView::Sorted(small);
  const SetView l = SetView::Sorted(large);
  const SetView sparse = SetView::Bitmap(sparse_bits, 1);
  const SetView dense = SetView::Bitmap(dense_bits, kDenseDomain);
  EXPECT_STREQ(DispatchedKernelName(s, l), "galloping");
  EXPECT_STREQ(DispatchedKernelName(l, l), "scalar_merge");
  // Tiny equal-size sets cost a few ns under either sorted kernel; the
  // calibrated tables may price them either way, but the choice must
  // stay inside the sorted pair.
  const std::string tiny = DispatchedKernelName(s, s);
  EXPECT_TRUE(tiny == "scalar_merge" || tiny == "galloping") << tiny;
  EXPECT_STREQ(DispatchedKernelName(s, sparse), "probe_bitmap");
  EXPECT_STREQ(DispatchedKernelName(dense, dense), "bitmap_and");
  // Sparse × dense bitmaps sit on the calibrated bitmap_and/bitmap_probe
  // boundary — which side wins is the cost table's call, not a contract —
  // but the choice must stay inside the bitmap pair.
  const std::string sparse_dense = DispatchedKernelName(sparse, dense);
  EXPECT_TRUE(sparse_dense == "bitmap_and" || sparse_dense == "bitmap_probe")
      << sparse_dense;
}

}  // namespace
}  // namespace cne
