#include "graph/generators.h"

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

namespace cne {
namespace {

TEST(ErdosRenyiTest, ExactEdgeCount) {
  Rng rng(1);
  const BipartiteGraph g = ErdosRenyiBipartite(50, 40, 300, rng);
  EXPECT_EQ(g.NumUpper(), 50u);
  EXPECT_EQ(g.NumLower(), 40u);
  EXPECT_EQ(g.NumEdges(), 300u);
}

TEST(ErdosRenyiTest, DenseRegimeUsesFloydPath) {
  Rng rng(2);
  // > half the grid triggers the dense path.
  const BipartiteGraph g = ErdosRenyiBipartite(10, 10, 80, rng);
  EXPECT_EQ(g.NumEdges(), 80u);
}

TEST(ErdosRenyiTest, CompleteGrid) {
  Rng rng(3);
  const BipartiteGraph g = ErdosRenyiBipartite(5, 6, 30, rng);
  EXPECT_EQ(g.NumEdges(), 30u);
  for (VertexId u = 0; u < 5; ++u) {
    EXPECT_EQ(g.Degree(Layer::kUpper, u), 6u);
  }
}

TEST(ErdosRenyiTest, ZeroEdges) {
  Rng rng(4);
  const BipartiteGraph g = ErdosRenyiBipartite(5, 5, 0, rng);
  EXPECT_EQ(g.NumEdges(), 0u);
}

TEST(ErdosRenyiTest, DegreesAreBalanced) {
  Rng rng(5);
  const BipartiteGraph g = ErdosRenyiBipartite(100, 100, 2000, rng);
  // Expected degree 20 per upper vertex; all degrees within a loose band.
  for (VertexId u = 0; u < 100; ++u) {
    EXPECT_GT(g.Degree(Layer::kUpper, u), 2u);
    EXPECT_LT(g.Degree(Layer::kUpper, u), 60u);
  }
}

TEST(PowerLawWeightsTest, NormalizedAndDecreasing) {
  const auto w = PowerLawWeights(100, 2.1);
  ASSERT_EQ(w.size(), 100u);
  EXPECT_NEAR(std::accumulate(w.begin(), w.end(), 0.0), 1.0, 1e-12);
  for (size_t i = 1; i < w.size(); ++i) EXPECT_LT(w[i], w[i - 1]);
}

TEST(PowerLawWeightsTest, SmallerExponentConcentratesMassOnHubs) {
  // Smaller exponent -> heavier-tailed degree distribution -> the weight
  // sequence decays faster, concentrating mass on the top vertices.
  const auto heavy = PowerLawWeights(1000, 1.8);
  const auto light = PowerLawWeights(1000, 3.0);
  EXPECT_GT(heavy[0], light[0]);
  EXPECT_LT(heavy[999] / heavy[0], light[999] / light[0]);
}

TEST(ChungLuTest, ApproximateEdgeCountAndSkew) {
  Rng rng(6);
  const BipartiteGraph g = ChungLuPowerLaw(2000, 3000, 20000, 2.1, rng);
  EXPECT_EQ(g.NumEdges(), 20000u);
  // Heavy-tailed: the max degree should far exceed the average.
  const double avg = g.AverageDegree(Layer::kUpper);
  EXPECT_GT(g.MaxDegree(Layer::kUpper), 5 * avg);
}

TEST(ChungLuTest, HighWeightVertexGetsHighDegree) {
  Rng rng(7);
  const BipartiteGraph g = ChungLuPowerLaw(500, 500, 5000, 2.1, rng);
  // Vertex 0 has the largest weight; its degree should be near the top.
  EXPECT_GE(g.Degree(Layer::kUpper, 0),
            g.MaxDegree(Layer::kUpper) / 4);
}

TEST(ChungLuTest, ExplicitWeights) {
  Rng rng(8);
  // All mass on upper vertex 0: every edge is incident to it.
  const std::vector<double> upper = {1.0, 0.0, 0.0};
  const std::vector<double> lower = {1.0, 1.0, 1.0, 1.0};
  const BipartiteGraph g = ChungLuFromWeights(upper, lower, 4, rng);
  EXPECT_EQ(g.Degree(Layer::kUpper, 0), g.NumEdges());
}

TEST(ChungLuTest, DuplicateCapTerminates) {
  Rng rng(9);
  // Only one possible pair but many edges requested: must terminate with a
  // warning rather than loop forever.
  const std::vector<double> upper = {1.0};
  const std::vector<double> lower = {1.0};
  const BipartiteGraph g = ChungLuFromWeights(upper, lower, 10, rng);
  EXPECT_EQ(g.NumEdges(), 1u);
}

TEST(CompleteBipartiteTest, AllPairsPresent) {
  const BipartiteGraph g = CompleteBipartite(3, 4);
  EXPECT_EQ(g.NumEdges(), 12u);
  EXPECT_EQ(g.CountCommonNeighbors(Layer::kUpper, 0, 1), 4u);
  EXPECT_EQ(g.CountCommonNeighbors(Layer::kLower, 0, 3), 3u);
}

TEST(StarTest, HubSeesAll) {
  const BipartiteGraph g = Star(7);
  EXPECT_EQ(g.NumEdges(), 7u);
  EXPECT_EQ(g.Degree(Layer::kLower, 0), 7u);
  // Any two upper vertices share exactly the hub.
  EXPECT_EQ(g.CountCommonNeighbors(Layer::kUpper, 0, 6), 1u);
}

TEST(PlantedTest, ExactCommonNeighborCount) {
  // 5 common, 3 exclusive to u, 2 exclusive to w, 10 isolated upper.
  const BipartiteGraph g = PlantedCommonNeighbors(5, 3, 2, 10);
  EXPECT_EQ(g.NumUpper(), 20u);
  EXPECT_EQ(g.NumLower(), 2u);
  EXPECT_EQ(g.CountCommonNeighbors(Layer::kLower, 0, 1), 5u);
  EXPECT_EQ(g.Degree(Layer::kLower, 0), 8u);
  EXPECT_EQ(g.Degree(Layer::kLower, 1), 7u);
}

TEST(PlantedTest, ExtraLowerVerticesAreIsolated) {
  const BipartiteGraph g = PlantedCommonNeighbors(2, 1, 1, 0, 3);
  EXPECT_EQ(g.NumLower(), 5u);
  for (VertexId l = 2; l < 5; ++l) EXPECT_EQ(g.Degree(Layer::kLower, l), 0u);
}

TEST(PlantedTest, ZeroCommon) {
  const BipartiteGraph g = PlantedCommonNeighbors(0, 4, 4, 0);
  EXPECT_EQ(g.CountCommonNeighbors(Layer::kLower, 0, 1), 0u);
}

TEST(GeneratorDeterminismTest, SameSeedSameGraph) {
  Rng a(99), b(99);
  const BipartiteGraph g1 = ChungLuPowerLaw(300, 300, 2000, 2.1, a);
  const BipartiteGraph g2 = ChungLuPowerLaw(300, 300, 2000, 2.1, b);
  EXPECT_EQ(g1.EdgeList(), g2.EdgeList());
}

}  // namespace
}  // namespace cne
