#include "graph/subgraph.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/graph_builder.h"

namespace cne {
namespace {

BipartiteGraph MakeFixture() {
  GraphBuilder b(4, 4);
  b.AddEdge(0, 0).AddEdge(0, 1).AddEdge(1, 1).AddEdge(2, 2).AddEdge(3, 3);
  return b.Build();
}

TEST(InducedSubgraphTest, KeepsOnlyInternalEdges) {
  const BipartiteGraph g = MakeFixture();
  // Keep u0, u1 and l1: only edges (0,1) and (1,1) survive.
  const BipartiteGraph sub = InducedSubgraph(g, {0, 1}, {1});
  EXPECT_EQ(sub.NumUpper(), 2u);
  EXPECT_EQ(sub.NumLower(), 1u);
  EXPECT_EQ(sub.NumEdges(), 2u);
  EXPECT_TRUE(sub.HasEdge(0, 0));
  EXPECT_TRUE(sub.HasEdge(1, 0));
}

TEST(InducedSubgraphTest, RelabelsCompactlyPreservingOrder) {
  const BipartiteGraph g = MakeFixture();
  const BipartiteGraph sub = InducedSubgraph(g, {1, 3}, {1, 3});
  // u1 -> 0, u3 -> 1; l1 -> 0, l3 -> 1. Edges (1,1) and (3,3) survive.
  EXPECT_TRUE(sub.HasEdge(0, 0));
  EXPECT_TRUE(sub.HasEdge(1, 1));
  EXPECT_EQ(sub.NumEdges(), 2u);
}

TEST(InducedSubgraphTest, DeduplicatesKeepLists) {
  const BipartiteGraph g = MakeFixture();
  const BipartiteGraph sub = InducedSubgraph(g, {0, 0, 1, 1}, {0, 1, 1});
  EXPECT_EQ(sub.NumUpper(), 2u);
  EXPECT_EQ(sub.NumLower(), 2u);
}

TEST(InducedSubgraphTest, EmptyKeepLists) {
  const BipartiteGraph g = MakeFixture();
  const BipartiteGraph sub = InducedSubgraph(g, {}, {});
  EXPECT_EQ(sub.NumUpper(), 0u);
  EXPECT_EQ(sub.NumEdges(), 0u);
}

TEST(InducedSubgraphTest, FullKeepIsIdentity) {
  const BipartiteGraph g = MakeFixture();
  const BipartiteGraph sub = InducedSubgraph(g, {0, 1, 2, 3}, {0, 1, 2, 3});
  EXPECT_EQ(sub.EdgeList(), g.EdgeList());
}

TEST(FractionSubgraphTest, SizesScaleWithFraction) {
  Rng gen(5);
  const BipartiteGraph g = ErdosRenyiBipartite(1000, 800, 5000, gen);
  Rng rng(6);
  const BipartiteGraph sub = InducedSubgraphByVertexFraction(g, 0.5, rng);
  EXPECT_EQ(sub.NumUpper(), 500u);
  EXPECT_EQ(sub.NumLower(), 400u);
  // Edge survival probability is ~0.25; allow a wide band.
  EXPECT_GT(sub.NumEdges(), 700u);
  EXPECT_LT(sub.NumEdges(), 1900u);
}

TEST(FractionSubgraphTest, FullFractionKeepsEverything) {
  Rng gen(7);
  const BipartiteGraph g = ErdosRenyiBipartite(100, 100, 500, gen);
  Rng rng(8);
  const BipartiteGraph sub = InducedSubgraphByVertexFraction(g, 1.0, rng);
  EXPECT_EQ(sub.NumEdges(), g.NumEdges());
  EXPECT_EQ(sub.NumUpper(), g.NumUpper());
}

TEST(FractionSubgraphTest, TinyFractionKeepsAtLeastOneVertex) {
  Rng gen(9);
  const BipartiteGraph g = ErdosRenyiBipartite(100, 100, 500, gen);
  Rng rng(10);
  const BipartiteGraph sub = InducedSubgraphByVertexFraction(g, 0.001, rng);
  EXPECT_GE(sub.NumUpper(), 1u);
  EXPECT_GE(sub.NumLower(), 1u);
}

TEST(FractionSubgraphDeathTest, RejectsInvalidFraction) {
  const BipartiteGraph g = MakeFixture();
  Rng rng(11);
  EXPECT_DEATH(InducedSubgraphByVertexFraction(g, 0.0, rng), "fraction");
  EXPECT_DEATH(InducedSubgraphByVertexFraction(g, 1.5, rng), "fraction");
}

}  // namespace
}  // namespace cne
