#include "store/snapshot_format.h"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "util/binary_io.h"

namespace cne {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

BipartiteGraph MakeTestGraph(VertexId num_upper, VertexId num_lower,
                             uint64_t num_edges, uint64_t seed) {
  Rng rng(seed);
  return ErdosRenyiBipartite(num_upper, num_lower, num_edges, rng);
}

TEST(SnapshotFormatTest, WriterReaderRoundTripsSectionsAndEpoch) {
  const std::string path = TempPath("snapshot_roundtrip.cne");
  SnapshotWriter writer(/*epoch=*/42);
  {
    ByteWriter& out = writer.BeginSection(SectionId::kConfig);
    out.U64(1234);
    writer.EndSection();
  }
  {
    ByteWriter& out = writer.BeginSection(SectionId::kLedger);
    out.F64(2.5);
    out.U64(0);
    writer.EndSection();
  }
  writer.Commit(path);
  EXPECT_FALSE(FileExists(path + ".tmp"));

  SnapshotReader reader(path);
  EXPECT_EQ(reader.version(), kSnapshotVersion);
  EXPECT_EQ(reader.epoch(), 42u);
  ASSERT_EQ(reader.sections().size(), 2u);
  EXPECT_TRUE(reader.Has(SectionId::kConfig));
  EXPECT_TRUE(reader.Has(SectionId::kLedger));
  EXPECT_FALSE(reader.Has(SectionId::kGraph));
  ByteReader config = reader.Section(SectionId::kConfig);
  EXPECT_EQ(config.U64(), 1234u);
  EXPECT_THROW(reader.Section(SectionId::kViews), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(SnapshotFormatTest, CommitReplacesThePreviousSnapshotAtomically) {
  const std::string path = TempPath("snapshot_replace.cne");
  for (uint64_t epoch : {1u, 2u}) {
    SnapshotWriter writer(epoch);
    ByteWriter& out = writer.BeginSection(SectionId::kConfig);
    out.U64(epoch * 100);
    writer.EndSection();
    writer.Commit(path);
  }
  SnapshotReader reader(path);
  EXPECT_EQ(reader.epoch(), 2u);
  ByteReader config = reader.Section(SectionId::kConfig);
  EXPECT_EQ(config.U64(), 200u);
  std::filesystem::remove(path);
}

TEST(SnapshotFormatTest, CorruptPayloadByteFailsTheSectionCrc) {
  const std::string path = TempPath("snapshot_corrupt.cne");
  SnapshotWriter writer(7);
  ByteWriter& out = writer.BeginSection(SectionId::kViews);
  for (int i = 0; i < 64; ++i) out.U64(static_cast<uint64_t>(i));
  writer.EndSection();
  writer.Commit(path);

  auto bytes = ReadFileBytes(path);
  bytes[bytes.size() - 9] ^= 0x10;  // flip one payload bit
  WriteFileAtomic(path, bytes);
  EXPECT_THROW(SnapshotReader{path}, std::runtime_error);
  std::filesystem::remove(path);
}

TEST(SnapshotFormatTest, TruncatedAndForeignFilesAreRejected) {
  const std::string path = TempPath("snapshot_bad.cne");
  SnapshotWriter writer(7);
  ByteWriter& out = writer.BeginSection(SectionId::kConfig);
  out.U64(1);
  writer.EndSection();
  writer.Commit(path);

  auto bytes = ReadFileBytes(path);
  bytes.resize(bytes.size() - 4);  // cut into the payload
  WriteFileAtomic(path, bytes);
  EXPECT_THROW(SnapshotReader{path}, std::runtime_error);

  ByteWriter garbage;
  garbage.U64(0x1122334455667788ull);
  garbage.U64(0);
  garbage.U64(0);
  WriteFileAtomic(path, garbage.data());
  EXPECT_THROW(SnapshotReader{path}, std::runtime_error);

  EXPECT_THROW(SnapshotReader{TempPath("no_such_snapshot.cne")},
               std::runtime_error);
  std::filesystem::remove(path);
}

TEST(SnapshotFormatTest, ConfigSectionRoundTrips) {
  SnapshotConfig config;
  config.protocol_kind = 3;
  config.epsilon = 2.0;
  config.epsilon1_fraction = 0.5;
  config.alpha = 0.25;
  config.seed = 99;
  config.initial_lifetime_budget = 2.0;
  config.current_lifetime_budget = 4.0;
  config.next_noise_stream = 12345;
  config.num_upper = 10;
  config.num_lower = 20;
  config.num_edges = 77;

  ByteWriter out;
  WriteConfigSection(config, out);
  ByteReader in(out.data());
  const SnapshotConfig back = ReadConfigSection(in);
  EXPECT_EQ(back.protocol_kind, config.protocol_kind);
  EXPECT_EQ(back.epsilon, config.epsilon);
  EXPECT_EQ(back.epsilon1_fraction, config.epsilon1_fraction);
  EXPECT_EQ(back.alpha, config.alpha);
  EXPECT_EQ(back.seed, config.seed);
  EXPECT_EQ(back.initial_lifetime_budget, config.initial_lifetime_budget);
  EXPECT_EQ(back.current_lifetime_budget, config.current_lifetime_budget);
  EXPECT_EQ(back.next_noise_stream, config.next_noise_stream);
  EXPECT_EQ(back.num_upper, config.num_upper);
  EXPECT_EQ(back.num_lower, config.num_lower);
  EXPECT_EQ(back.num_edges, config.num_edges);
  EXPECT_EQ(in.remaining(), 0u);
}

void ExpectGraphsEqual(const BipartiteGraph& a, const BipartiteGraph& b) {
  ASSERT_EQ(a.NumUpper(), b.NumUpper());
  ASSERT_EQ(a.NumLower(), b.NumLower());
  ASSERT_EQ(a.NumEdges(), b.NumEdges());
  EXPECT_EQ(a.EdgeList(), b.EdgeList());
  // The lower direction is restored, not recomputed: spot-check it.
  for (VertexId v = 0; v < a.NumLower(); ++v) {
    const auto na = a.Neighbors(Layer::kLower, v);
    const auto nb = b.Neighbors(Layer::kLower, v);
    ASSERT_TRUE(std::equal(na.begin(), na.end(), nb.begin(), nb.end()))
        << "lower vertex " << v;
  }
}

TEST(SnapshotFormatTest, GraphSectionRoundTripsInBlocks) {
  const BipartiteGraph graph = MakeTestGraph(60, 150, 700, 3);
  // A block size far below the edge count forces many blocks; 1 is the
  // degenerate one-id-per-block extreme.
  for (uint32_t block_edges : {1u, 7u, 64u, kDefaultCsrBlockEdges}) {
    ByteWriter out;
    WriteGraphSection(graph, out, block_edges);
    ByteReader in(out.data());
    const BipartiteGraph restored = ReadGraphSection(in);
    ExpectGraphsEqual(graph, restored);
    EXPECT_EQ(in.remaining(), 0u) << "block size " << block_edges;

    ByteReader summarize(out.data());
    const GraphSectionSummary summary = SummarizeGraphSection(summarize);
    EXPECT_EQ(summary.num_edges, graph.NumEdges());
    EXPECT_EQ(summary.block_edges, block_edges);
    const uint64_t expected_blocks =
        (graph.NumEdges() + block_edges - 1) / block_edges;
    EXPECT_EQ(summary.num_blocks, 2 * expected_blocks);
  }
}

TEST(SnapshotFormatTest, EmptyGraphRoundTrips) {
  const BipartiteGraph empty(3, 4, {});
  ByteWriter out;
  WriteGraphSection(empty, out);
  ByteReader in(out.data());
  const BipartiteGraph restored = ReadGraphSection(in);
  EXPECT_EQ(restored.NumUpper(), 3u);
  EXPECT_EQ(restored.NumLower(), 4u);
  EXPECT_EQ(restored.NumEdges(), 0u);
}

TEST(SnapshotFormatTest, CorruptCsrBlockIsDetected) {
  const BipartiteGraph graph = MakeTestGraph(30, 60, 300, 5);
  ByteWriter out;
  WriteGraphSection(graph, out, 16);
  std::vector<uint8_t> bytes(out.data().begin(), out.data().end());
  bytes[bytes.size() - 2] ^= 0x01;  // inside the last block's ids
  ByteReader in(bytes);
  EXPECT_THROW(ReadGraphSection(in), std::runtime_error);
}

TEST(SnapshotFormatTest, LoadGraphFromSnapshotFile) {
  const std::string path = TempPath("snapshot_graph.cne");
  const BipartiteGraph graph = MakeTestGraph(25, 50, 200, 9);
  SnapshotWriter writer(1);
  WriteGraphSection(graph, writer.BeginSection(SectionId::kGraph));
  writer.EndSection();
  writer.Commit(path);
  const BipartiteGraph restored = LoadGraphFromSnapshot(path);
  ExpectGraphsEqual(graph, restored);
  std::filesystem::remove(path);
}

TEST(SnapshotFormatTest, ViewsSectionRoundTripsBothRepresentations) {
  ViewsSection views;
  views.epsilon = 1.0;
  views.lookups = 10;
  views.releases = 3;
  views.cache_hits = 6;
  views.rejections = 1;
  views.uploaded_edges = 123;

  ViewRecord sorted;
  sorted.packed_vertex = PackLayeredVertex({Layer::kUpper, 4});
  sorted.state = ViewRecord::kStateMaterialized;
  sorted.rng_stream = sorted.packed_vertex;
  sorted.epsilon = 1.0;
  sorted.flip_probability = 0.25;
  sorted.domain = 100;
  sorted.bitmap = false;
  sorted.size = 3;
  sorted.members = {5, 17, 80};
  views.entries.push_back(sorted);

  ViewRecord bitmap;
  bitmap.packed_vertex = PackLayeredVertex({Layer::kLower, 9});
  bitmap.state = ViewRecord::kStateMaterialized;
  bitmap.rng_stream = bitmap.packed_vertex;
  bitmap.epsilon = 1.0;
  bitmap.flip_probability = 0.25;
  bitmap.domain = 130;
  bitmap.bitmap = true;
  bitmap.size = 2;
  bitmap.words = {uint64_t{1} << 5, 0, uint64_t{1} << 1};
  views.entries.push_back(bitmap);

  ViewRecord pending;
  pending.packed_vertex = PackLayeredVertex({Layer::kLower, 11});
  pending.state = ViewRecord::kStateAuthorizedPending;
  views.entries.push_back(pending);

  ByteWriter out;
  WriteViewsSection(views, out);
  ByteReader in(out.data());
  const ViewsSection back = ReadViewsSection(in);
  EXPECT_EQ(in.remaining(), 0u);
  EXPECT_EQ(back.epsilon, views.epsilon);
  EXPECT_EQ(back.lookups, views.lookups);
  EXPECT_EQ(back.uploaded_edges, views.uploaded_edges);
  ASSERT_EQ(back.entries.size(), 3u);
  EXPECT_EQ(back.entries[0].members, sorted.members);
  EXPECT_FALSE(back.entries[0].bitmap);
  EXPECT_EQ(back.entries[1].words, bitmap.words);
  EXPECT_TRUE(back.entries[1].bitmap);
  EXPECT_EQ(back.entries[1].domain, 130u);
  EXPECT_EQ(back.entries[2].state, ViewRecord::kStateAuthorizedPending);
}

TEST(SnapshotFormatDeathTest, DuplicateSectionIsFatal) {
  SnapshotWriter writer(1);
  writer.BeginSection(SectionId::kConfig);
  writer.EndSection();
  EXPECT_DEATH(writer.BeginSection(SectionId::kConfig), "duplicate");
}

}  // namespace
}  // namespace cne
