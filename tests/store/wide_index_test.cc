// Overflow-regression tests for the 64-bit index arithmetic the scale
// harness depends on: CSR offsets, snapshot block indexing, and
// uploaded-edge accounting must all stay exact past the 2³² boundary.
// Everything here tests the arithmetic directly on synthetic values — no
// multi-GiB allocations.

#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "graph/bipartite_graph.h"
#include "service/noisy_view_store.h"
#include "store/snapshot_format.h"

namespace cne {
namespace {

constexpr uint64_t kTwo32 = uint64_t{1} << 32;

TEST(WideIndexTest, CountsToOffsetsSumsPastTwo32) {
  // Five degree buckets of 1.5e9 each: the running sum crosses 2³² after
  // the third and must keep exact 64-bit values.
  const uint64_t degree = 1'500'000'000;
  std::vector<uint64_t> counts = {0, degree, degree, degree, degree, degree};
  CountsToOffsets(counts);
  for (size_t v = 0; v < counts.size(); ++v) {
    EXPECT_EQ(counts[v], degree * v);
  }
  EXPECT_GT(counts.back(), kTwo32);
}

TEST(WideIndexTest, CountsToOffsetsNearUint64Limit) {
  const uint64_t half = std::numeric_limits<uint64_t>::max() / 2;
  std::vector<uint64_t> counts = {0, half, half};
  CountsToOffsets(counts);
  EXPECT_EQ(counts[1], half);
  EXPECT_EQ(counts[2], 2 * half);
}

TEST(WideIndexTest, CsrBlockCountPastTwo32) {
  const uint32_t block = kDefaultCsrBlockEdges;
  // 10⁸-edge direction: the scale harness target.
  EXPECT_EQ(CsrBlockCount(100'000'000, block), (100'000'000 + block - 1) / block);
  // Past 2³² adjacency ids: 2³² + 5 ids is 65537 blocks, not a wrapped 1.
  EXPECT_EQ(CsrBlockCount(kTwo32 + 5, block), kTwo32 / block + 1);
  EXPECT_EQ(CsrBlockCount(0, block), 0u);
  EXPECT_EQ(CsrBlockCount(1, block), 1u);
  EXPECT_EQ(CsrBlockCount(block, block), 1u);
  EXPECT_EQ(CsrBlockCount(block + 1, block), 2u);
  EXPECT_EQ(CsrBlockCount(kTwo32, 0), 0u);  // degenerate block size
}

TEST(WideIndexTest, CsrBlockAtPastTwo32) {
  const uint32_t block = kDefaultCsrBlockEdges;
  const uint64_t num_ids = kTwo32 + 12345;
  const uint64_t blocks = CsrBlockCount(num_ids, block);

  // First block, the last full block ending exactly at 2³², and the
  // ragged tail starting at 2³² (the boundary is a block multiple).
  EXPECT_EQ(CsrBlockAt(0, num_ids, block), (CsrBlockSpan{0, block}));
  const uint64_t boundary = kTwo32 / block;  // block starting at 2³²
  const CsrBlockSpan before = CsrBlockAt(boundary - 1, num_ids, block);
  EXPECT_EQ(before.first, kTwo32 - block);
  EXPECT_EQ(before.count, block);
  const CsrBlockSpan after = CsrBlockAt(boundary, num_ids, block);
  EXPECT_EQ(after.first, kTwo32);
  EXPECT_EQ(after.count, 12345u);

  const CsrBlockSpan tail = CsrBlockAt(blocks - 1, num_ids, block);
  EXPECT_EQ(tail.first + tail.count, num_ids);
  EXPECT_GT(tail.count, 0u);
  EXPECT_LE(tail.count, block);

  // Out-of-range blocks are empty rather than wrapped.
  EXPECT_EQ(CsrBlockAt(blocks, num_ids, block).count, 0u);
}

TEST(WideIndexTest, CsrBlockSpansTileTheIdRangeExactly) {
  // Spans must partition [0, num_ids): contiguous, non-overlapping, and
  // summing to the total — checked over a ragged shape near 2³².
  const uint32_t block = kDefaultCsrBlockEdges;
  const uint64_t num_ids = kTwo32 + 7 * block + 321;
  const uint64_t blocks = CsrBlockCount(num_ids, block);
  // Spot-check the boundary region instead of iterating 65k+ blocks.
  for (uint64_t b : {uint64_t{0}, uint64_t{1}, blocks / 2, blocks - 2,
                     blocks - 1}) {
    const CsrBlockSpan span = CsrBlockAt(b, num_ids, block);
    EXPECT_EQ(span.first, b * block);
    if (b + 1 < blocks) {
      EXPECT_EQ(span.count, block);
    } else {
      EXPECT_EQ(span.first + span.count, num_ids);
    }
  }
}

TEST(WideIndexTest, UploadedEdgeAccountingPastTwo32) {
  // 10⁸-edge graphs at ε=1 upload ~n bits per release; cumulative edge
  // uploads cross 2³² quickly. Stats must accumulate and convert without
  // truncation.
  NoisyViewStore::Stats stats;
  stats.lookups = kTwo32 + 10;
  stats.cache_hits = kTwo32 + 9;
  stats.uploaded_edges = kTwo32 + 1000;

  EXPECT_GT(stats.uploaded_edges, kTwo32);
  const CommModel model{};
  const double bytes = stats.UploadedBytes(model);
  EXPECT_NEAR(bytes,
              model.bytes_per_edge * static_cast<double>(kTwo32 + 1000),
              1.0);
  EXPECT_NEAR(stats.CacheHitRate(), 1.0, 1e-6);
}

TEST(WideIndexTest, PackLayeredVertexAtTheIdCeiling) {
  // kMaxVertexId must survive the pack/unpack round trip in both layers,
  // and the reserved all-ones id must stay distinct from it.
  for (Layer layer : {Layer::kUpper, Layer::kLower}) {
    const LayeredVertex v{layer, kMaxVertexId};
    EXPECT_EQ(UnpackLayeredVertex(PackLayeredVertex(v)), v);
  }
  const uint64_t max_key =
      PackLayeredVertex({Layer::kLower, kMaxVertexId});
  const uint64_t reserved_key =
      PackLayeredVertex({Layer::kLower, kMaxVertexId + 1});
  EXPECT_NE(max_key, reserved_key);
}

TEST(WideIndexTest, ViewsSectionCountersAreSixtyFourBit) {
  // The persisted counters mirror NoisyViewStore::Stats and must be wide
  // enough for the same 10⁸-edge regime.
  ViewsSection views;
  views.uploaded_edges = 3 * kTwo32;
  views.lookups = kTwo32 + 7;
  EXPECT_EQ(views.uploaded_edges, 3 * kTwo32);
  EXPECT_EQ(views.lookups, kTwo32 + 7);
}

}  // namespace
}  // namespace cne
