#include "store/budget_wal.h"

#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graph/bipartite_graph.h"
#include "util/binary_io.h"

namespace cne {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

WalRecord Charge(Layer layer, VertexId id, double epsilon) {
  WalRecord record;
  record.type = WalRecordType::kCharge;
  record.vertex = PackLayeredVertex({layer, id});
  record.value = epsilon;
  return record;
}

WalRecord Authorized(Layer layer, VertexId id) {
  WalRecord record;
  record.type = WalRecordType::kViewAuthorized;
  record.vertex = PackLayeredVertex({layer, id});
  return record;
}

WalRecord Sealed(uint64_t counter) {
  WalRecord record;
  record.type = WalRecordType::kSubmitSealed;
  record.counter = counter;
  return record;
}

WalRecord Raise(double budget) {
  WalRecord record;
  record.type = WalRecordType::kRaiseBudget;
  record.value = budget;
  return record;
}

TEST(BudgetWalTest, AppendSyncReadRoundTrips) {
  const std::string path = TempPath("wal_roundtrip.wal");
  BudgetWal::Reset(path, /*epoch=*/3);
  {
    BudgetWal wal(path);
    wal.Append(Authorized(Layer::kLower, 7));
    wal.Append(Charge(Layer::kLower, 7, 1.0));
    wal.Append(Charge(Layer::kUpper, 2, 0.5));
    wal.Append(Sealed(12));
    wal.Sync();
    // A second batch over the same handle appends, not overwrites.
    wal.Append(Charge(Layer::kLower, 9, 0.25));
    wal.Append(Sealed(20));
    wal.Sync();
    EXPECT_EQ(wal.appended_records(), 6u);
  }
  const WalReplay replay = BudgetWal::Read(path);
  EXPECT_EQ(replay.epoch, 3u);
  EXPECT_FALSE(replay.torn_tail);
  EXPECT_EQ(replay.dropped_bytes, 0u);
  ASSERT_EQ(replay.records.size(), 6u);
  EXPECT_EQ(replay.committed, 6u);
  EXPECT_EQ(replay.records[0], Authorized(Layer::kLower, 7));
  EXPECT_EQ(replay.records[1], Charge(Layer::kLower, 7, 1.0));
  EXPECT_EQ(replay.records[3], Sealed(12));
  EXPECT_EQ(replay.records[5], Sealed(20));
  std::filesystem::remove(path);
}

TEST(BudgetWalTest, EmptyWalReadsCleanly) {
  const std::string path = TempPath("wal_empty.wal");
  BudgetWal::Reset(path, 9);
  const WalReplay replay = BudgetWal::Read(path);
  EXPECT_EQ(replay.epoch, 9u);
  EXPECT_TRUE(replay.records.empty());
  EXPECT_EQ(replay.committed, 0u);
  EXPECT_FALSE(replay.torn_tail);
  std::filesystem::remove(path);
}

TEST(BudgetWalTest, UnsealedTailIsParsedButNotCommitted) {
  const std::string path = TempPath("wal_unsealed.wal");
  BudgetWal::Reset(path, 0);
  {
    BudgetWal wal(path);
    wal.Append(Charge(Layer::kLower, 1, 1.0));
    wal.Append(Sealed(1));
    // A crash after this sync but before the next seal: the admission
    // batch below reached disk but was never acted on.
    wal.Append(Authorized(Layer::kLower, 2));
    wal.Append(Charge(Layer::kLower, 2, 1.0));
    wal.Sync();
  }
  const WalReplay replay = BudgetWal::Read(path);
  ASSERT_EQ(replay.records.size(), 4u);
  EXPECT_EQ(replay.committed, 2u);  // up to and including the seal
  EXPECT_FALSE(replay.torn_tail);
  std::filesystem::remove(path);
}

TEST(BudgetWalTest, RaiseBudgetIsACommitBarrier) {
  const std::string path = TempPath("wal_raise.wal");
  BudgetWal::Reset(path, 0);
  {
    BudgetWal wal(path);
    wal.Append(Sealed(4));
    wal.Append(Raise(8.0));
    wal.Append(Charge(Layer::kLower, 3, 1.0));  // unsealed
    wal.Sync();
  }
  const WalReplay replay = BudgetWal::Read(path);
  ASSERT_EQ(replay.records.size(), 3u);
  EXPECT_EQ(replay.committed, 2u);
  EXPECT_EQ(replay.records[1], Raise(8.0));
  std::filesystem::remove(path);
}

TEST(BudgetWalTest, TornFinalRecordIsDetectedAndDropped) {
  const std::string path = TempPath("wal_torn.wal");
  BudgetWal::Reset(path, 5);
  {
    BudgetWal wal(path);
    wal.Append(Charge(Layer::kLower, 1, 1.0));
    wal.Append(Sealed(1));
    wal.Append(Charge(Layer::kLower, 2, 1.0));
    wal.Append(Sealed(2));
    wal.Sync();
  }
  const uint64_t full_size = std::filesystem::file_size(path);
  // Tear the final record mid-way: a crash during the last fsync.
  std::filesystem::resize_file(path, full_size - 5);
  const WalReplay torn = BudgetWal::Read(path);
  EXPECT_TRUE(torn.torn_tail);
  EXPECT_EQ(torn.dropped_bytes, 21u - 5u);
  ASSERT_EQ(torn.records.size(), 3u);
  EXPECT_EQ(torn.committed, 2u);  // the torn seal never committed

  // Corrupt (rather than shorten) the final record's CRC: same outcome.
  {
    BudgetWal::Rewrite(path, 5, torn.records);
    auto bytes = ReadFileBytes(path);
    bytes.back() ^= 0xFF;
    WriteFileAtomic(path, bytes);
  }
  const WalReplay corrupt = BudgetWal::Read(path);
  EXPECT_TRUE(corrupt.torn_tail);
  ASSERT_EQ(corrupt.records.size(), 2u);
  EXPECT_EQ(corrupt.committed, 2u);
  std::filesystem::remove(path);
}

TEST(BudgetWalTest, RewriteCompactsToExactlyTheGivenRecords) {
  const std::string path = TempPath("wal_rewrite.wal");
  const std::vector<WalRecord> records = {Charge(Layer::kUpper, 1, 0.5),
                                          Sealed(3)};
  BudgetWal::Rewrite(path, 11, records);
  const WalReplay replay = BudgetWal::Read(path);
  EXPECT_EQ(replay.epoch, 11u);
  EXPECT_EQ(replay.records, records);
  EXPECT_EQ(replay.committed, 2u);
  EXPECT_FALSE(replay.torn_tail);

  // Appending after a rewrite continues the same stream.
  {
    BudgetWal wal(path);
    wal.Append(Sealed(4));
    wal.Sync();
  }
  EXPECT_EQ(BudgetWal::Read(path).records.size(), 3u);
  std::filesystem::remove(path);
}

TEST(BudgetWalTest, ForeignAndMissingFilesThrow) {
  const std::string path = TempPath("wal_foreign.wal");
  ByteWriter garbage;
  garbage.U64(0xABCDEF);
  garbage.U32(1);
  garbage.U64(0);
  WriteFileAtomic(path, garbage.data());
  EXPECT_THROW(BudgetWal::Read(path), std::runtime_error);
  EXPECT_THROW(BudgetWal::Read(TempPath("wal_missing.wal")),
               std::runtime_error);
  EXPECT_THROW(BudgetWal{TempPath("wal_missing.wal")}, std::runtime_error);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace cne
