#include "store/budget_wal.h"

#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graph/bipartite_graph.h"
#include "util/binary_io.h"

namespace cne {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

WalRecord Charge(Layer layer, VertexId id, double epsilon) {
  WalRecord record;
  record.type = WalRecordType::kCharge;
  record.vertex = PackLayeredVertex({layer, id});
  record.value = epsilon;
  return record;
}

WalRecord Authorized(Layer layer, VertexId id) {
  WalRecord record;
  record.type = WalRecordType::kViewAuthorized;
  record.vertex = PackLayeredVertex({layer, id});
  return record;
}

WalRecord Sealed(uint64_t counter) {
  WalRecord record;
  record.type = WalRecordType::kSubmitSealed;
  record.counter = counter;
  return record;
}

WalRecord Raise(double budget) {
  WalRecord record;
  record.type = WalRecordType::kRaiseBudget;
  record.value = budget;
  return record;
}

TEST(BudgetWalTest, AppendSyncReadRoundTrips) {
  const std::string path = TempPath("wal_roundtrip.wal");
  BudgetWal::Reset(path, /*epoch=*/3);
  {
    BudgetWal wal(path);
    wal.Append(Authorized(Layer::kLower, 7));
    wal.Append(Charge(Layer::kLower, 7, 1.0));
    wal.Append(Charge(Layer::kUpper, 2, 0.5));
    wal.Append(Sealed(12));
    wal.Sync();
    // A second batch over the same handle appends, not overwrites.
    wal.Append(Charge(Layer::kLower, 9, 0.25));
    wal.Append(Sealed(20));
    wal.Sync();
    EXPECT_EQ(wal.appended_records(), 6u);
  }
  const WalReplay replay = BudgetWal::Read(path);
  EXPECT_EQ(replay.epoch, 3u);
  EXPECT_FALSE(replay.torn_tail);
  EXPECT_EQ(replay.dropped_bytes, 0u);
  ASSERT_EQ(replay.records.size(), 6u);
  EXPECT_EQ(replay.committed, 6u);
  EXPECT_EQ(replay.records[0], Authorized(Layer::kLower, 7));
  EXPECT_EQ(replay.records[1], Charge(Layer::kLower, 7, 1.0));
  EXPECT_EQ(replay.records[3], Sealed(12));
  EXPECT_EQ(replay.records[5], Sealed(20));
  std::filesystem::remove(path);
}

TEST(BudgetWalTest, EmptyWalReadsCleanly) {
  const std::string path = TempPath("wal_empty.wal");
  BudgetWal::Reset(path, 9);
  const WalReplay replay = BudgetWal::Read(path);
  EXPECT_EQ(replay.epoch, 9u);
  EXPECT_TRUE(replay.records.empty());
  EXPECT_EQ(replay.committed, 0u);
  EXPECT_FALSE(replay.torn_tail);
  std::filesystem::remove(path);
}

TEST(BudgetWalTest, UnsealedTailIsParsedButNotCommitted) {
  const std::string path = TempPath("wal_unsealed.wal");
  BudgetWal::Reset(path, 0);
  {
    BudgetWal wal(path);
    wal.Append(Charge(Layer::kLower, 1, 1.0));
    wal.Append(Sealed(1));
    // A crash after this sync but before the next seal: the admission
    // batch below reached disk but was never acted on.
    wal.Append(Authorized(Layer::kLower, 2));
    wal.Append(Charge(Layer::kLower, 2, 1.0));
    wal.Sync();
  }
  const WalReplay replay = BudgetWal::Read(path);
  ASSERT_EQ(replay.records.size(), 4u);
  EXPECT_EQ(replay.committed, 2u);  // up to and including the seal
  EXPECT_FALSE(replay.torn_tail);
  std::filesystem::remove(path);
}

TEST(BudgetWalTest, RaiseBudgetIsACommitBarrier) {
  const std::string path = TempPath("wal_raise.wal");
  BudgetWal::Reset(path, 0);
  {
    BudgetWal wal(path);
    wal.Append(Sealed(4));
    wal.Append(Raise(8.0));
    wal.Append(Charge(Layer::kLower, 3, 1.0));  // unsealed
    wal.Sync();
  }
  const WalReplay replay = BudgetWal::Read(path);
  ASSERT_EQ(replay.records.size(), 3u);
  EXPECT_EQ(replay.committed, 2u);
  EXPECT_EQ(replay.records[1], Raise(8.0));
  std::filesystem::remove(path);
}

TEST(BudgetWalTest, TornFinalRecordIsDetectedAndDropped) {
  const std::string path = TempPath("wal_torn.wal");
  BudgetWal::Reset(path, 5);
  {
    BudgetWal wal(path);
    wal.Append(Charge(Layer::kLower, 1, 1.0));
    wal.Append(Sealed(1));
    wal.Append(Charge(Layer::kLower, 2, 1.0));
    wal.Append(Sealed(2));
    wal.Sync();
  }
  const uint64_t full_size = std::filesystem::file_size(path);
  // Tear the final record mid-way: a crash during the last fsync.
  std::filesystem::resize_file(path, full_size - 5);
  const WalReplay torn = BudgetWal::Read(path);
  EXPECT_TRUE(torn.torn_tail);
  EXPECT_EQ(torn.dropped_bytes, 21u - 5u);
  ASSERT_EQ(torn.records.size(), 3u);
  EXPECT_EQ(torn.committed, 2u);  // the torn seal never committed

  // Corrupt (rather than shorten) the final record's CRC: same outcome.
  {
    BudgetWal::Rewrite(path, 5, torn.records);
    auto bytes = ReadFileBytes(path);
    bytes.back() ^= 0xFF;
    WriteFileAtomic(path, bytes);
  }
  const WalReplay corrupt = BudgetWal::Read(path);
  EXPECT_TRUE(corrupt.torn_tail);
  ASSERT_EQ(corrupt.records.size(), 2u);
  EXPECT_EQ(corrupt.committed, 2u);
  std::filesystem::remove(path);
}

TEST(BudgetWalTest, RewriteCompactsToExactlyTheGivenRecords) {
  const std::string path = TempPath("wal_rewrite.wal");
  const std::vector<WalRecord> records = {Charge(Layer::kUpper, 1, 0.5),
                                          Sealed(3)};
  BudgetWal::Rewrite(path, 11, records);
  const WalReplay replay = BudgetWal::Read(path);
  EXPECT_EQ(replay.epoch, 11u);
  EXPECT_EQ(replay.records, records);
  EXPECT_EQ(replay.committed, 2u);
  EXPECT_FALSE(replay.torn_tail);

  // Appending after a rewrite continues the same stream.
  {
    BudgetWal wal(path);
    wal.Append(Sealed(4));
    wal.Sync();
  }
  EXPECT_EQ(BudgetWal::Read(path).records.size(), 3u);
  std::filesystem::remove(path);
}

// --- Exhaustive torn-tail coverage: a crash can cut or rot the file at
// --- ANY byte, so every offset is tested, not a sampled handful.

constexpr size_t kHeaderBytes = 20;  // magic u64 + version u32 + epoch u64
constexpr size_t kRecordBytes = 21;  // type u8 + u64 + u64 + crc u32

// Five records, two seals: [Charge, Sealed, Charge, Authorized, Sealed].
// Committed prefix by parsed-record count n: n>=5 -> 5, n in [2,4] -> 2
// (the first seal), n<2 -> 0.
std::vector<uint8_t> FiveRecordWal(const std::string& path) {
  BudgetWal::Reset(path, /*epoch=*/4);
  {
    BudgetWal wal(path);
    wal.Append(Charge(Layer::kLower, 1, 1.0));
    wal.Append(Sealed(1));
    wal.Append(Charge(Layer::kLower, 2, 1.0));
    wal.Append(Authorized(Layer::kLower, 3));
    wal.Append(Sealed(2));
    wal.Sync();
  }
  return ReadFileBytes(path);
}

size_t ExpectedCommitted(size_t parsed_records) {
  if (parsed_records >= 5) return 5;
  if (parsed_records >= 2) return 2;
  return 0;
}

TEST(BudgetWalTornTest, TruncationAtEveryByteDropsExactlyTheUncommitted) {
  const std::string path = TempPath("wal_exhaustive_trunc.wal");
  const std::vector<uint8_t> full = FiveRecordWal(path);
  ASSERT_EQ(full.size(), kHeaderBytes + 5 * kRecordBytes);

  // Cutting into the header is not a torn tail — it is not a WAL at all.
  for (size_t t = 0; t < kHeaderBytes; ++t) {
    WriteFileAtomic(path, std::span<const uint8_t>(full.data(), t));
    EXPECT_THROW(BudgetWal::Read(path), std::runtime_error) << "cut at " << t;
  }

  for (size_t t = kHeaderBytes; t <= full.size(); ++t) {
    WriteFileAtomic(path, std::span<const uint8_t>(full.data(), t));
    const WalReplay replay = BudgetWal::Read(path);
    const size_t parsed = (t - kHeaderBytes) / kRecordBytes;
    const size_t remainder = (t - kHeaderBytes) % kRecordBytes;
    ASSERT_EQ(replay.records.size(), parsed) << "cut at " << t;
    EXPECT_EQ(replay.committed, ExpectedCommitted(parsed)) << "cut at " << t;
    // A cut exactly on a record boundary is indistinguishable from a
    // clean shutdown mid-batch: complete records, no torn tail.
    EXPECT_EQ(replay.torn_tail, remainder != 0) << "cut at " << t;
    EXPECT_EQ(replay.dropped_bytes, remainder) << "cut at " << t;

    // Recovery compacts to the committed prefix; the compacted log reads
    // back clean with nothing further to drop.
    BudgetWal::Rewrite(path, replay.epoch,
                       std::span<const WalRecord>(replay.records.data(),
                                                  replay.committed));
    const WalReplay compacted = BudgetWal::Read(path);
    EXPECT_FALSE(compacted.torn_tail) << "cut at " << t;
    EXPECT_EQ(compacted.records.size(), replay.committed) << "cut at " << t;
    EXPECT_EQ(compacted.committed, replay.committed) << "cut at " << t;
  }
  std::filesystem::remove(path);
}

TEST(BudgetWalTornTest, FlippingEveryByteOfTheFinalRecordDropsIt) {
  const std::string path = TempPath("wal_exhaustive_flip.wal");
  const std::vector<uint8_t> full = FiveRecordWal(path);
  const size_t final_record = kHeaderBytes + 4 * kRecordBytes;
  for (size_t offset = final_record; offset < full.size(); ++offset) {
    std::vector<uint8_t> bytes = full;
    bytes[offset] ^= 0xFF;
    WriteFileAtomic(path, bytes);
    const WalReplay replay = BudgetWal::Read(path);
    // The record CRC covers every body byte, and a flipped CRC no longer
    // matches the intact body: either way the record must not parse.
    EXPECT_TRUE(replay.torn_tail) << "flip at " << offset;
    ASSERT_EQ(replay.records.size(), 4u) << "flip at " << offset;
    EXPECT_EQ(replay.committed, 2u) << "flip at " << offset;
    EXPECT_EQ(replay.dropped_bytes, kRecordBytes) << "flip at " << offset;
  }
  std::filesystem::remove(path);
}

TEST(BudgetWalTest, ForeignAndMissingFilesThrow) {
  const std::string path = TempPath("wal_foreign.wal");
  ByteWriter garbage;
  garbage.U64(0xABCDEF);
  garbage.U32(1);
  garbage.U64(0);
  WriteFileAtomic(path, garbage.data());
  EXPECT_THROW(BudgetWal::Read(path), std::runtime_error);
  EXPECT_THROW(BudgetWal::Read(TempPath("wal_missing.wal")),
               std::runtime_error);
  EXPECT_THROW(BudgetWal{TempPath("wal_missing.wal")}, std::runtime_error);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace cne
